//! Adversary configurations.
//!
//! The paper's attack model has two faces: *eavesdropping* (handled
//! offline by [`crate::privacy`] with [`wsn_crypto::LinkAdversary`]) and
//! *data pollution* — a compromised aggregation node (cluster head or
//! relay) altering the partial aggregate it forwards. [`Pollution`]
//! configures the latter; it is installed on individual nodes via
//! [`crate::runner::IcpdaRun::with_attackers`] or
//! [`crate::node::IcpdaNode::set_pollution`].
//!
//! Three pollution strategies are modelled, of increasing subtlety
//! against the audit-trail defence:
//!
//! * [`PollutionMode::AlterTotals`] — change the report's totals without
//!   touching the audit trail. Breaks totals-vs-inputs consistency, so
//!   *any* overhearing neighbour detects it.
//! * [`PollutionMode::AlterInput`] — change one input claim and the
//!   totals consistently. Detected by monitors that hold the forged
//!   input (cluster members for a cluster claim, overhearers for a relay
//!   claim).
//! * [`PollutionMode::PhantomInput`] — invent an input no monitor can
//!   refute. The audit trail's documented blind spot under the paper's
//!   non-colluding local attacker; measured, not hidden.

use crate::msg::{InputClaim, MergedRef};
use agg::field::Fp;
use wsn_sim::NodeId;

/// How the attacker embeds its pollution in the report.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PollutionMode {
    /// Naive: alter the totals only (inconsistent audit trail).
    #[default]
    AlterTotals,
    /// Consistent: alter one input claim and the totals together.
    AlterInput,
    /// Stealthy: add a phantom input claim and raise the totals.
    PhantomInput,
}

/// A data-pollution behaviour installed on a compromised node, applied to
/// the node's own upstream transmission after honest aggregation — i.e.
/// the attacker *replaces* the correct partial result with a polluted
/// one, exactly the attack the integrity layer must detect.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pollution {
    /// Attack embedding strategy.
    pub mode: PollutionMode,
    /// Field value added (mod p) to component 0. Use
    /// `Fp::ZERO - Fp::new(x)` to deflate.
    pub component_delta: Fp,
    /// Signed change to the claimed participant count (saturating at 0).
    pub participants_delta: i32,
}

impl Default for Pollution {
    fn default() -> Self {
        Pollution {
            mode: PollutionMode::AlterTotals,
            component_delta: Fp::ZERO,
            participants_delta: 0,
        }
    }
}

impl Pollution {
    /// A naive attacker that inflates the totals by `delta`.
    #[must_use]
    pub fn inflate(delta: u64) -> Self {
        Pollution {
            mode: PollutionMode::AlterTotals,
            component_delta: Fp::new(delta),
            participants_delta: 0,
        }
    }

    /// A naive attacker that deflates the totals by `delta` (mod p).
    #[must_use]
    pub fn deflate(delta: u64) -> Self {
        Pollution {
            mode: PollutionMode::AlterTotals,
            component_delta: Fp::ZERO - Fp::new(delta),
            participants_delta: 0,
        }
    }

    /// A consistent attacker that forges one of its input claims.
    #[must_use]
    pub fn forge_input(delta: u64) -> Self {
        Pollution {
            mode: PollutionMode::AlterInput,
            component_delta: Fp::new(delta),
            participants_delta: 0,
        }
    }

    /// A stealthy attacker that invents a phantom input.
    #[must_use]
    pub fn phantom(delta: u64, participants: i32) -> Self {
        Pollution {
            mode: PollutionMode::PhantomInput,
            component_delta: Fp::new(delta),
            participants_delta: participants,
        }
    }

    /// Whether this pollution actually changes anything.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        self.component_delta.is_zero() && self.participants_delta == 0
    }

    /// Applies the pollution to an outgoing report.
    ///
    /// Participant deltas saturate *consistently*: a deflation larger
    /// than the affected count is clamped once and the same effective
    /// delta is applied to every counter it touches, so a "consistent"
    /// forgery stays consistent on small clusters instead of silently
    /// underflowing into a self-incriminating mismatch (the outer count
    /// and the claim used to saturate independently).
    pub fn apply(&self, totals: &mut [Fp], participants: &mut u32, inputs: &mut Vec<InputClaim>) {
        match self.mode {
            PollutionMode::AlterTotals => {
                self.bump_totals(totals, participants, self.participants_delta);
            }
            PollutionMode::AlterInput => {
                let idx = inputs
                    .iter()
                    .position(|i| matches!(i.source, MergedRef::Cluster { .. }))
                    .or(if inputs.is_empty() { None } else { Some(0) });
                let Some(input) = idx.map(|i| &mut inputs[i]) else {
                    // With no audit trail (integrity off) this degenerates
                    // to AlterTotals, the only observable surface anyway.
                    self.bump_totals(totals, participants, self.participants_delta);
                    return;
                };
                // The forged claim's count floors at 0, and the outer
                // total is the claims' sum, so clamping to the claim's
                // headroom keeps both counters in lockstep. The max is
                // bounded by the i32 delta below and 0 above, so the
                // cast back is exact.
                let effective =
                    i64::from(self.participants_delta).max(-i64::from(input.participants)) as i32;
                if let Some(first) = input.totals.first_mut() {
                    *first = (Fp::new(*first) + self.component_delta).to_u64();
                }
                input.participants = input.participants.saturating_add_signed(effective);
                self.bump_totals(totals, participants, effective);
            }
            PollutionMode::PhantomInput => {
                // A phantom claim's count is unsigned: a negative delta
                // cannot be embedded consistently, so it clamps to 0 for
                // the claim *and* the outer count alike.
                let effective = self.participants_delta.max(0);
                self.bump_totals(totals, participants, effective);
                if !inputs.is_empty() {
                    inputs.push(InputClaim {
                        source: MergedRef::Relay {
                            // A sender id far outside any real deployment.
                            sender: NodeId::new(u32::MAX - 7),
                            msg_id: 0,
                        },
                        totals: {
                            let mut t = vec![0u64; totals.len()];
                            if let Some(first) = t.first_mut() {
                                *first = self.component_delta.to_u64();
                            }
                            t
                        },
                        participants: u32::try_from(effective).unwrap_or(0),
                    });
                }
            }
        }
    }

    fn bump_totals(&self, totals: &mut [Fp], participants: &mut u32, delta: i32) {
        if let Some(first) = totals.first_mut() {
            *first += self.component_delta;
        }
        *participants = participants.saturating_add_signed(delta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs_one_cluster() -> Vec<InputClaim> {
        vec![InputClaim {
            source: MergedRef::Cluster {
                head: NodeId::new(3),
            },
            totals: vec![50],
            participants: 3,
        }]
    }

    #[test]
    fn alter_totals_leaves_inputs_untouched() {
        let p = Pollution::inflate(100);
        let mut totals = vec![Fp::new(50)];
        let mut n = 3;
        let mut inputs = inputs_one_cluster();
        p.apply(&mut totals, &mut n, &mut inputs);
        assert_eq!(totals[0], Fp::new(150));
        assert_eq!(inputs[0].totals, vec![50], "audit trail now inconsistent");
    }

    #[test]
    fn alter_input_keeps_consistency() {
        let p = Pollution::forge_input(100);
        let mut totals = vec![Fp::new(50)];
        let mut n = 3;
        let mut inputs = inputs_one_cluster();
        p.apply(&mut totals, &mut n, &mut inputs);
        assert_eq!(totals[0], Fp::new(150));
        assert_eq!(inputs[0].totals, vec![150], "claim forged consistently");
    }

    #[test]
    fn phantom_adds_an_input() {
        let p = Pollution::phantom(500, 2);
        let mut totals = vec![Fp::new(50)];
        let mut n = 3;
        let mut inputs = inputs_one_cluster();
        p.apply(&mut totals, &mut n, &mut inputs);
        assert_eq!(inputs.len(), 2);
        assert_eq!(totals[0], Fp::new(550));
        assert_eq!(n, 5);
        assert_eq!(inputs[1].totals, vec![500]);
        assert_eq!(inputs[1].participants, 2);
    }

    #[test]
    fn deflate_wraps_in_field() {
        let p = Pollution::deflate(100);
        let mut totals = vec![Fp::new(250)];
        let mut n = 3;
        let mut inputs = Vec::new();
        p.apply(&mut totals, &mut n, &mut inputs);
        assert_eq!(totals[0], Fp::new(150));
    }

    #[test]
    fn participants_saturate_at_zero() {
        let p = Pollution {
            mode: PollutionMode::AlterTotals,
            component_delta: Fp::ZERO,
            participants_delta: -10,
        };
        let mut totals = vec![Fp::ZERO];
        let mut n = 3;
        p.apply(&mut totals, &mut n, &mut Vec::new());
        assert_eq!(n, 0);
    }

    #[test]
    fn alter_input_deflation_clamps_consistently_on_small_clusters() {
        // Regression: a deflation larger than the claim's count used to
        // saturate the outer count and the claim independently (outer
        // −10 → floor 0 at delta −3 effective, claim −3), silently
        // turning the "consistent" forgery into a detectable mismatch.
        let p = Pollution {
            mode: PollutionMode::AlterInput,
            component_delta: Fp::ZERO,
            participants_delta: -10,
        };
        let mut totals = vec![Fp::new(50)];
        let mut n = 3; // outer count == the single claim's count + 0
        let mut inputs = inputs_one_cluster();
        p.apply(&mut totals, &mut n, &mut inputs);
        // Both counters moved by the same effective delta (−3).
        assert_eq!(inputs[0].participants, 0);
        assert_eq!(n, 0);
        assert_eq!(
            u64::from(n),
            inputs.iter().map(|i| u64::from(i.participants)).sum(),
            "forgery must remain self-consistent"
        );
    }

    #[test]
    fn phantom_negative_delta_clamps_to_zero_for_both_counters() {
        // Regression: a negative delta used to shrink the outer count
        // while the phantom claim got 0 participants — an immediately
        // inconsistent report on any cluster.
        let p = Pollution::phantom(500, -4);
        let mut totals = vec![Fp::new(50)];
        let mut n = 3;
        let mut inputs = inputs_one_cluster();
        p.apply(&mut totals, &mut n, &mut inputs);
        assert_eq!(n, 3, "outer count untouched by the clamped delta");
        assert_eq!(inputs.len(), 2);
        assert_eq!(inputs[1].participants, 0);
        assert_eq!(totals[0], Fp::new(550));
    }

    #[test]
    fn noop_detection() {
        assert!(Pollution::default().is_noop());
        assert!(!Pollution::inflate(1).is_noop());
        assert!(!Pollution::phantom(0, 1).is_noop());
    }
}
