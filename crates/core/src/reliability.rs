//! The reliability layer: retry budgets with jittered exponential
//! backoff, and the counters that make loss recovery visible.
//!
//! iCPDA has no link-layer ACKs (broadcast-heavy traffic makes them
//! expensive), so every repeated transmission in the protocol is a
//! *blind* retransmission: the sender re-sends on a timer and receivers
//! deduplicate (rosters are idempotent, upstream reports carry
//! `(sender, msg_id)`). Before this module those repeats were scattered
//! one-shot literals; [`ReliabilityConfig`] centralises the budget
//! (how many repeats) and the growth law (exponential backoff with
//! uniform jitter), and [`RetryState`] tracks one message's progress
//! through that budget.
//!
//! Four protocol counters expose the layer's activity (folded into the
//! observability registry at the end of a run, see `icpda obs report`):
//!
//! * `icpda_rel_timeout` — a repeat timer fired (no confirmation is
//!   possible without ACKs, so every armed repeat that survives to its
//!   deadline counts as a timeout).
//! * `icpda_rel_retransmit` — a retransmission actually went on the air.
//! * `icpda_rel_exhausted` — a retry budget ran to completion.
//! * `icpda_rel_duplicate` — a receiver suppressed a duplicate delivery
//!   (retransmission or channel-level duplication).
//!
//! Determinism: the only RNG use is the per-retry jitter draw, taken
//! from the node's own deterministic stream, and the default
//! configuration reproduces the pre-refactor draw sequence exactly —
//! fault-free runs are byte-identical to the scattered-literal era.

use rand::Rng;
use wsn_sim::SimDuration;

/// Retry policy for blind retransmissions.
///
/// The delay before retry `k` (zero-based) is
/// `base * backoff^k + U(0, jitter)`, with the deterministic part capped
/// at [`ReliabilityConfig::max_delay`]. `base` and `jitter` are supplied
/// per call site (rosters and upstream reports use different timings,
/// see [`crate::PhaseSchedule`]); the budget and growth law live here.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReliabilityConfig {
    /// Whether the ARQ layer is active at all. With `arq = false` no
    /// repeat timers are armed: every message is sent exactly once.
    pub arq: bool,
    /// Retransmissions allowed per message (on top of the first send).
    pub max_retries: u32,
    /// Extends the retry budgets to the cluster-formation and share
    /// phases (`HeadAnnounce`, `Join`, the share queue, `FSum`). Off in
    /// the paper default — those messages historically relied on their
    /// NACK repair rounds alone — so fault-free default runs stay
    /// byte-identical; on under the deep budget, where a bursty channel
    /// would otherwise sever whole clusters before the upstream ARQ gets
    /// anything to protect.
    pub cluster_arq: bool,
    /// Multiplier applied to the deterministic delay per retry.
    pub backoff: u32,
    /// Cap on the deterministic part of the delay — keeps late retries
    /// inside the phase window that scheduled them.
    pub max_delay: SimDuration,
}

impl ReliabilityConfig {
    /// The paper-era default: one blind repeat per critical message
    /// (roster, upstream report), exactly what the protocol did before
    /// the reliability layer existed. Byte-identical to that behaviour.
    #[must_use]
    pub fn paper_default() -> Self {
        ReliabilityConfig {
            arq: true,
            max_retries: 1,
            cluster_arq: false,
            backoff: 2,
            max_delay: SimDuration::from_secs(2),
        }
    }

    /// ARQ disabled: single transmission, no repeats (`--arq off`).
    #[must_use]
    pub fn off() -> Self {
        ReliabilityConfig {
            arq: false,
            max_retries: 0,
            cluster_arq: false,
            backoff: 2,
            max_delay: SimDuration::from_secs(2),
        }
    }

    /// A deeper budget for lossy channels (`--arq on`): three repeats
    /// with exponential spacing, extended to the cluster phases.
    #[must_use]
    pub fn aggressive() -> Self {
        ReliabilityConfig {
            arq: true,
            max_retries: 3,
            cluster_arq: true,
            backoff: 2,
            max_delay: SimDuration::from_secs(2),
        }
    }

    /// The deterministic part of retry `attempt`'s delay:
    /// `base * backoff^attempt`, saturating, capped at `max_delay`.
    #[must_use]
    pub fn backoff_delay(&self, attempt: u32, base: SimDuration) -> SimDuration {
        let factor = u64::from(self.backoff).saturating_pow(attempt);
        let nanos = base.as_nanos().saturating_mul(factor);
        SimDuration::from_nanos(nanos.min(self.max_delay.as_nanos()))
    }
}

/// One message's progress through a retry budget.
///
/// Created fresh when the message is first sent; each call to
/// [`RetryState::next_delay`] consumes one retry from the budget and
/// yields the delay to the next retransmission, or `None` once the
/// budget is spent (the caller bumps `icpda_rel_exhausted` and stops
/// re-arming its timer).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetryState {
    attempt: u32,
}

impl RetryState {
    /// A fresh budget (no retries consumed yet).
    #[must_use]
    pub fn new() -> Self {
        RetryState { attempt: 0 }
    }

    /// Retries consumed so far.
    #[must_use]
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// Consumes one retry: returns the jittered backoff delay before the
    /// next retransmission, or `None` when the budget is exhausted (or
    /// ARQ is off). The jitter is one `gen_range` draw over
    /// `[0, jitter)` nanoseconds — the same single draw per repeat the
    /// pre-refactor literals made, preserving RNG-stream identity.
    pub fn next_delay<R: Rng + ?Sized>(
        &mut self,
        config: &ReliabilityConfig,
        base: SimDuration,
        jitter: SimDuration,
        rng: &mut R,
    ) -> Option<SimDuration> {
        if !config.arq || self.attempt >= config.max_retries {
            return None;
        }
        let fixed = config.backoff_delay(self.attempt, base);
        self.attempt += 1;
        let jitter = SimDuration::from_nanos(rng.gen_range(0..jitter.as_nanos().max(1)));
        Some(fixed + jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn default_budget_is_one_repeat() {
        let cfg = ReliabilityConfig::paper_default();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut state = RetryState::new();
        let base = SimDuration::from_millis(150);
        let jitter = SimDuration::from_millis(100);
        let first = state
            .next_delay(&cfg, base, jitter, &mut rng)
            .expect("one retry in the budget");
        assert!(first >= base && first < base + jitter);
        assert_eq!(state.attempt(), 1);
        assert_eq!(state.next_delay(&cfg, base, jitter, &mut rng), None);
    }

    #[test]
    fn default_first_retry_reproduces_the_legacy_draw() {
        // The pre-refactor code did `150ms + gen_range(0..100_000_000)`;
        // the default config must make the identical single draw.
        let cfg = ReliabilityConfig::paper_default();
        let base = SimDuration::from_millis(150);
        let jitter = SimDuration::from_millis(100);
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let delay = RetryState::new()
            .next_delay(&cfg, base, jitter, &mut rng)
            .unwrap();
        let mut legacy_rng = ChaCha8Rng::seed_from_u64(99);
        let legacy = SimDuration::from_millis(150)
            + SimDuration::from_nanos(legacy_rng.gen_range(0..100_000_000));
        assert_eq!(delay, legacy);
    }

    #[test]
    fn off_never_retries() {
        let cfg = ReliabilityConfig::off();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut state = RetryState::new();
        assert_eq!(
            state.next_delay(
                &cfg,
                SimDuration::from_millis(100),
                SimDuration::from_millis(10),
                &mut rng
            ),
            None
        );
        assert_eq!(state.attempt(), 0);
    }

    #[test]
    fn backoff_grows_exponentially_until_the_cap() {
        let cfg = ReliabilityConfig {
            arq: true,
            max_retries: 10,
            cluster_arq: false,
            backoff: 2,
            max_delay: SimDuration::from_millis(800),
        };
        let base = SimDuration::from_millis(100);
        assert_eq!(cfg.backoff_delay(0, base), SimDuration::from_millis(100));
        assert_eq!(cfg.backoff_delay(1, base), SimDuration::from_millis(200));
        assert_eq!(cfg.backoff_delay(2, base), SimDuration::from_millis(400));
        assert_eq!(cfg.backoff_delay(3, base), SimDuration::from_millis(800));
        // Capped from here on.
        assert_eq!(cfg.backoff_delay(4, base), SimDuration::from_millis(800));
        assert_eq!(cfg.backoff_delay(63, base), SimDuration::from_millis(800));
    }

    #[test]
    fn aggressive_budget_spaces_retries_out() {
        let cfg = ReliabilityConfig::aggressive();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut state = RetryState::new();
        let base = SimDuration::from_millis(100);
        let jitter = SimDuration::from_nanos(1); // effectively no jitter
        let delays: Vec<SimDuration> =
            std::iter::from_fn(|| state.next_delay(&cfg, base, jitter, &mut rng)).collect();
        assert_eq!(delays.len(), 3);
        assert!(delays[0] < delays[1] && delays[1] < delays[2]);
    }

    #[test]
    fn each_retry_draws_exactly_once() {
        // Stream identity: two RNGs, one driven through next_delay, one
        // through a bare gen_range, stay in lockstep.
        let cfg = ReliabilityConfig::aggressive();
        let base = SimDuration::from_millis(100);
        let jitter = SimDuration::from_millis(50);
        let mut rng_a = ChaCha8Rng::seed_from_u64(7);
        let mut rng_b = ChaCha8Rng::seed_from_u64(7);
        let mut state = RetryState::new();
        for _ in 0..3 {
            state.next_delay(&cfg, base, jitter, &mut rng_a).unwrap();
            let _: u64 = rng_b.gen_range(0..jitter.as_nanos().max(1));
        }
        assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
    }
}
