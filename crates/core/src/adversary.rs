//! Per-node Byzantine behaviours and the CPDA collusion attack.
//!
//! [`AdversaryPlan`] is the malicious counterpart of
//! [`wsn_sim::fault::FaultPlan`]: a deterministic, ahead-of-time
//! assignment of a [`Behavior`] to individual nodes, installed by
//! [`crate::runner::IcpdaRun::with_adversary_plan`] and enforced by
//! behaviour hooks inside the [`crate::node::IcpdaNode`] state machine.
//! Each behaviour subverts one protocol phase:
//!
//! * [`Behavior::GarbageShares`] — share exchange: the node distributes
//!   uniformly random field elements instead of its blinded polynomial
//!   evaluations, silently corrupting its cluster's recovered sum.
//! * [`Behavior::PolluteAggregate`] — upstream aggregation: the node
//!   replaces its honest partial aggregate with a polluted one (any
//!   [`Pollution`] embedding), the attack the audit-trail layer detects.
//! * [`Behavior::ColludePrivacy`] — passive: the node runs the protocol
//!   faithfully but pools its received shares, outgoing shares and
//!   overheard `FSum` broadcasts with the other colluders after the
//!   round (see [`evaluate_collusion`]).
//! * [`Behavior::SelectiveForward`] — ascent: the node absorbs nothing
//!   and forwards nothing for its children, black-holing the subtree.
//!
//! An **empty** plan is a strict no-op: no hook fires, no extra RNG draw
//! happens, and runs are byte-identical to a build that has never heard
//! of adversaries (the golden-trace test enforces this).
//!
//! Node 0 is the base station and is never compromisable, mirroring the
//! fault layer's immortality rule.
//!
//! # The published collusion attack
//!
//! Sen & Maitra (arXiv:1201.4532) break the CPDA privacy layer when all
//! `m − 1` other members of a cluster collude against the remaining
//! honest member `x`: the colluders directly hold `m − 1` evaluations of
//! `x`'s blinding polynomial (the shares `x` sent them), and they derive
//! the `m`-th — `x`'s kept share — from `x`'s *broadcast* assembly by
//! subtracting their own shares to `x`:
//!
//! ```text
//! v_{p_x}^x = F_{p_x} − Σ_{j≠x} v_{p_x}^j
//! ```
//!
//! With `m` points of a degree-`(m−1)` polynomial, Lagrange
//! interpolation at zero yields `x`'s private contribution exactly.
//! [`evaluate_collusion`] reproduces this from the simulated nodes'
//! actual protocol state ([`CollusionView`]) and verifies each recovered
//! value against the victim's ground-truth reading. The countermeasure
//! is the paper's own: the attack needs *every* other member, so the
//! disclosure probability under a compromised-node fraction `f` is
//! `f^{m−1}` per member — the `icpda-analysis` closed form
//! (`disclosure_probability`) that experiment `fig19_adversary` checks
//! against measurement.

use crate::attack::Pollution;
use crate::cluster::Roster;
use crate::shares::{recover_sum_at, ShareVector};
use agg::AggFunction;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;
use std::fmt;
use wsn_sim::NodeId;

/// One node's assigned malicious behaviour (the default is honest).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Behavior {
    /// Honest protocol execution — assigning it removes the node from
    /// the plan, so an all-`Lawful` plan *is* the empty plan.
    #[default]
    Lawful,
    /// Sends uniformly random field elements instead of blinded shares.
    GarbageShares,
    /// Replaces the node's upstream partial aggregate with a polluted
    /// one.
    PolluteAggregate(Pollution),
    /// Runs honestly but pools its round state with the other colluders
    /// to reconstruct honest members' readings (passive attack).
    ColludePrivacy,
    /// Drops every child report instead of absorbing and forwarding it.
    SelectiveForward,
}

impl Behavior {
    /// The trace-note discriminant recorded with
    /// [`wsn_sim::trace::TraceKind::AdversaryAction`] (0 = lawful,
    /// never recorded).
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            Behavior::Lawful => 0,
            Behavior::GarbageShares => 1,
            Behavior::PolluteAggregate(_) => 2,
            Behavior::ColludePrivacy => 3,
            Behavior::SelectiveForward => 4,
        }
    }

    /// The protocol phase this behaviour subverts.
    #[must_use]
    pub fn phase(self) -> &'static str {
        match self {
            Behavior::Lawful => "none",
            Behavior::GarbageShares => "share_exchange",
            Behavior::PolluteAggregate(_) => "aggregation",
            Behavior::ColludePrivacy => "share_exchange",
            Behavior::SelectiveForward => "ascent",
        }
    }
}

/// A rejected adversary-plan edit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AdversaryPlanError {
    /// Node 0 (the base station) can never be compromised.
    NodeZeroHonest,
    /// A compromise fraction outside `[0, 1]`.
    InvalidFraction(f64),
}

impl fmt::Display for AdversaryPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdversaryPlanError::NodeZeroHonest => {
                write!(f, "node 0 (the base station) is never compromisable")
            }
            AdversaryPlanError::InvalidFraction(fr) => {
                write!(f, "compromise fraction {fr} is outside [0, 1]")
            }
        }
    }
}

impl std::error::Error for AdversaryPlanError {}

/// A deterministic assignment of malicious behaviours to nodes.
///
/// # Examples
///
/// ```
/// use icpda::adversary::{AdversaryPlan, Behavior};
/// use icpda::Pollution;
/// use wsn_sim::NodeId;
///
/// let mut plan = AdversaryPlan::none();
/// plan.assign(NodeId::new(3), Behavior::PolluteAggregate(Pollution::inflate(500)))
///     .unwrap();
/// assert_eq!(plan.compromised_count(), 1);
/// assert_eq!(plan.behavior_of(NodeId::new(9)), Behavior::Lawful);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AdversaryPlan {
    assignments: BTreeMap<NodeId, Behavior>,
}

impl AdversaryPlan {
    /// The empty plan: every node honest, every hook dormant.
    #[must_use]
    pub fn none() -> Self {
        AdversaryPlan::default()
    }

    /// `true` when no node is compromised.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Number of compromised nodes.
    #[must_use]
    pub fn compromised_count(&self) -> usize {
        self.assignments.len()
    }

    /// Assigns `behavior` to `node`. Assigning [`Behavior::Lawful`]
    /// clears any earlier assignment (the empty plan stays empty).
    ///
    /// # Errors
    ///
    /// [`AdversaryPlanError::NodeZeroHonest`] if `node` is the base
    /// station.
    pub fn assign(&mut self, node: NodeId, behavior: Behavior) -> Result<(), AdversaryPlanError> {
        if node.index() == 0 {
            return Err(AdversaryPlanError::NodeZeroHonest);
        }
        if behavior == Behavior::Lawful {
            self.assignments.remove(&node);
        } else {
            self.assignments.insert(node, behavior);
        }
        Ok(())
    }

    /// The behaviour assigned to `node` ([`Behavior::Lawful`] if none).
    #[must_use]
    pub fn behavior_of(&self, node: NodeId) -> Behavior {
        self.assignments
            .get(&node)
            .copied()
            .unwrap_or(Behavior::Lawful)
    }

    /// Iterates over `(node, behaviour)` for every compromised node, in
    /// node order.
    pub fn compromised(&self) -> impl Iterator<Item = (NodeId, Behavior)> + '_ {
        self.assignments.iter().map(|(&n, &b)| (n, b))
    }

    /// Nodes assigned [`Behavior::ColludePrivacy`], in node order.
    pub fn colluders(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.assignments
            .iter()
            .filter(|(_, &b)| b == Behavior::ColludePrivacy)
            .map(|(&n, _)| n)
    }

    /// Generates a seeded random compromise over `n` nodes: each node
    /// except the base station adopts `behavior` with probability
    /// `fraction`. The generator is its own deterministic stream — it
    /// never touches the simulator's RNGs, so the honest remainder of
    /// the network draws exactly what it would in a clean run.
    ///
    /// # Errors
    ///
    /// [`AdversaryPlanError::InvalidFraction`] unless
    /// `0 <= fraction <= 1`.
    pub fn random_compromise(
        n: usize,
        fraction: f64,
        behavior: Behavior,
        seed: u64,
    ) -> Result<AdversaryPlan, AdversaryPlanError> {
        if !(0.0..=1.0).contains(&fraction) {
            return Err(AdversaryPlanError::InvalidFraction(fraction));
        }
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xBAD0_5EED_0ADA_0002);
        let mut plan = AdversaryPlan::none();
        for i in 1..n {
            if rng.gen_bool(fraction) {
                plan.assign(NodeId::new(i as u32), behavior)
                    .map_err(|_| AdversaryPlanError::InvalidFraction(fraction))?;
            }
        }
        Ok(plan)
    }

    /// The targeted `m − 1` attack: every member of `members` except
    /// `target` turns [`Behavior::ColludePrivacy`] — the published
    /// attack's exact success condition.
    ///
    /// # Errors
    ///
    /// [`AdversaryPlanError::NodeZeroHonest`] if a non-target member is
    /// the base station (never the case for real cluster rosters).
    pub fn collude_all_but_one(
        &mut self,
        members: &[NodeId],
        target: NodeId,
    ) -> Result<(), AdversaryPlanError> {
        for &member in members {
            if member != target {
                self.assign(member, Behavior::ColludePrivacy)?;
            }
        }
        Ok(())
    }
}

/// One node's end-of-round protocol state, as pooled by the colluders
/// (plus the ground-truth `reading`, which only the *evaluation* sees —
/// the attack itself never reads it; it is used to verify that the
/// recovered value really is the victim's contribution).
///
/// Harvested by [`crate::node::IcpdaNode::collusion_view`].
#[derive(Clone, Debug)]
pub struct CollusionView {
    /// The roster the node participated under (`None` if clusterless).
    pub roster: Option<Roster>,
    /// Whether the node actually transmitted shares this round.
    pub shared: bool,
    /// Ground-truth private reading (verification only).
    pub reading: u64,
    /// Shares received, keyed by origin (own kept share under own id).
    pub received_shares: BTreeMap<NodeId, ShareVector>,
    /// Shares sent, keyed by destination.
    pub outgoing_shares: BTreeMap<NodeId, ShareVector>,
    /// Assemblies held, keyed by roster position:
    /// `(F_j, contributor mask)`.
    pub fsums: BTreeMap<usize, (ShareVector, u64)>,
}

/// What the colluders managed to reconstruct.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CollusionReport {
    /// Nodes assigned [`Behavior::ColludePrivacy`].
    pub colluders: usize,
    /// Honest members that shared in a (≥ 2)-cluster — the population at
    /// risk.
    pub targets: usize,
    /// Targets whose private contribution the colluders reconstructed.
    pub exposed: usize,
    /// Exposed targets whose reconstruction matches the ground-truth
    /// reading (must equal `exposed`: the attack is exact, not
    /// statistical).
    pub verified: usize,
}

impl CollusionReport {
    /// Measured disclosure probability: exposed fraction of the at-risk
    /// population.
    #[must_use]
    pub fn probability(&self) -> f64 {
        if self.targets == 0 {
            0.0
        } else {
            self.exposed as f64 / self.targets as f64
        }
    }

    /// `true` when every reconstruction matched its victim's reading.
    #[must_use]
    pub fn all_verified(&self) -> bool {
        self.exposed == self.verified
    }
}

/// Pools the colluders' round state and runs the arXiv:1201.4532
/// reconstruction against every honest sharing member whose *entire*
/// cluster complement colludes.
///
/// For each such victim `x` at roster position `p_x`, the solver takes
/// the `m − 1` shares `x` distributed (each colluder `j`'s
/// `received_shares[x]`), derives `x`'s kept share from `x`'s broadcast
/// assembly (`F_{p_x}`, held by any colluder, minus the colluders' own
/// `outgoing_shares[x]`), and interpolates the `m` points at zero. The
/// derivation needs `F_{p_x}` to cover the full roster (partial
/// assemblies would subtract shares `x` never absorbed), so incomplete
/// clusters count as unexposed.
#[must_use]
pub fn evaluate_collusion(
    plan: &AdversaryPlan,
    views: &BTreeMap<NodeId, CollusionView>,
    function: AggFunction,
) -> CollusionReport {
    let mut report = CollusionReport {
        colluders: plan.colluders().count(),
        ..CollusionReport::default()
    };
    for (&victim, view) in views {
        if plan.behavior_of(victim) == Behavior::ColludePrivacy {
            continue;
        }
        let Some(roster) = view.roster.as_ref() else {
            continue;
        };
        if !view.shared || roster.len() < 2 || !roster.contains(victim) {
            continue;
        }
        report.targets += 1;
        if let Some(recovered) = reconstruct(plan, views, victim, roster) {
            report.exposed += 1;
            let truth = function.encode(view.reading);
            if recovered.len() == truth.len()
                && recovered.iter().zip(&truth).all(|(f, &t)| f.to_u64() == t)
            {
                report.verified += 1;
            }
        }
    }
    report
}

/// The reconstruction itself: `Some(contribution)` iff every other
/// member of `victim`'s roster colludes and the pooled state suffices.
fn reconstruct(
    plan: &AdversaryPlan,
    views: &BTreeMap<NodeId, CollusionView>,
    victim: NodeId,
    roster: &Roster,
) -> Option<ShareVector> {
    let p_x = roster.position(victim)?;
    let others: Vec<NodeId> = roster
        .members()
        .iter()
        .copied()
        .filter(|&m| m != victim)
        .collect();
    if others
        .iter()
        .any(|&m| plan.behavior_of(m) != Behavior::ColludePrivacy)
    {
        return None;
    }
    // The m − 1 directly-held points: the shares the victim distributed.
    let mut points: Vec<(usize, ShareVector)> = Vec::with_capacity(roster.len());
    for &j in &others {
        let p_j = roster.position(j)?;
        points.push((p_j, views.get(&j)?.received_shares.get(&victim)?.clone()));
    }
    // The m-th point: the victim's kept share, derived from its
    // broadcast assembly. Any colluder holding F_{p_x} with the full
    // contributor mask will do.
    let (assembly, _) = others.iter().find_map(|j| {
        views
            .get(j)?
            .fsums
            .get(&p_x)
            .filter(|&&(_, mask)| mask == roster.full_mask())
    })?;
    let mut kept = assembly.clone();
    for &j in &others {
        let sent = views.get(&j)?.outgoing_shares.get(&victim)?;
        if sent.len() != kept.len() {
            return None;
        }
        for (k, &s) in kept.iter_mut().zip(sent) {
            *k -= s;
        }
    }
    points.push((p_x, kept));
    recover_sum_at(&points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shares::{assemble, generate_shares};
    use agg::field::Fp;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn empty_plan_is_empty_and_lawful() {
        let plan = AdversaryPlan::none();
        assert!(plan.is_empty());
        assert_eq!(plan.compromised_count(), 0);
        assert_eq!(plan.behavior_of(n(7)), Behavior::Lawful);
        assert_eq!(plan.colluders().count(), 0);
    }

    #[test]
    fn node_zero_is_never_compromisable() {
        let mut plan = AdversaryPlan::none();
        assert_eq!(
            plan.assign(n(0), Behavior::GarbageShares),
            Err(AdversaryPlanError::NodeZeroHonest)
        );
        assert!(plan.is_empty());
    }

    #[test]
    fn lawful_assignment_clears_the_node() {
        let mut plan = AdversaryPlan::none();
        plan.assign(n(3), Behavior::SelectiveForward).unwrap();
        assert_eq!(plan.compromised_count(), 1);
        plan.assign(n(3), Behavior::Lawful).unwrap();
        assert!(plan.is_empty(), "all-Lawful plan is the empty plan");
    }

    #[test]
    fn random_compromise_is_deterministic_and_spares_node_zero() {
        let a = AdversaryPlan::random_compromise(100, 0.3, Behavior::ColludePrivacy, 42).unwrap();
        let b = AdversaryPlan::random_compromise(100, 0.3, Behavior::ColludePrivacy, 42).unwrap();
        assert_eq!(a, b);
        assert!(a.compromised_count() > 0);
        assert_eq!(a.behavior_of(n(0)), Behavior::Lawful);
        assert!(a
            .compromised()
            .all(|(node, b)| { node.index() != 0 && b == Behavior::ColludePrivacy }));
    }

    #[test]
    fn random_compromise_validates_fraction() {
        assert_eq!(
            AdversaryPlan::random_compromise(50, 1.5, Behavior::GarbageShares, 1),
            Err(AdversaryPlanError::InvalidFraction(1.5))
        );
        assert!(
            AdversaryPlan::random_compromise(50, 0.0, Behavior::GarbageShares, 1)
                .unwrap()
                .is_empty()
        );
    }

    #[test]
    fn error_display_is_informative() {
        assert!(AdversaryPlanError::NodeZeroHonest
            .to_string()
            .contains("base station"));
        assert!(AdversaryPlanError::InvalidFraction(2.0)
            .to_string()
            .contains('2'));
    }

    /// Builds the full post-round state of one honest m-cluster exactly
    /// as the protocol produces it: every member's distributed shares,
    /// received shares, and all m broadcast assemblies.
    fn cluster_views(
        members: &[NodeId],
        readings: &[u64],
        function: AggFunction,
        seed: u64,
    ) -> (Roster, BTreeMap<NodeId, CollusionView>) {
        let head = members[0];
        let roster = Roster::new(head, members);
        let m = roster.len();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // all_shares[i][j] = member i's evaluation for roster position j.
        let all_shares: Vec<Vec<ShareVector>> = readings
            .iter()
            .map(|&r| generate_shares(&function.encode(r), m, &mut rng))
            .collect();
        let fsums: BTreeMap<usize, (ShareVector, u64)> = (0..m)
            .map(|j| {
                let at_j: Vec<ShareVector> = all_shares.iter().map(|s| s[j].clone()).collect();
                (j, (assemble(&at_j), roster.full_mask()))
            })
            .collect();
        let views = roster
            .members()
            .iter()
            .enumerate()
            .map(|(j, &node)| {
                let received = roster
                    .members()
                    .iter()
                    .enumerate()
                    .map(|(i, &origin)| (origin, all_shares[i][j].clone()))
                    .collect();
                let outgoing = roster
                    .members()
                    .iter()
                    .enumerate()
                    .filter(|&(_, &dest)| dest != node)
                    .map(|(k, &dest)| (dest, all_shares[j][k].clone()))
                    .collect();
                let view = CollusionView {
                    roster: Some(roster.clone()),
                    shared: true,
                    reading: readings[j],
                    received_shares: received,
                    outgoing_shares: outgoing,
                    fsums: fsums.clone(),
                };
                (node, view)
            })
            .collect();
        (roster, views)
    }

    #[test]
    fn m_minus_one_colluders_expose_the_honest_member_exactly() {
        let members = [n(1), n(2), n(3), n(4)];
        let readings = [17u64, 23, 5, 40];
        let (roster, views) = cluster_views(&members, &readings, AggFunction::Sum, 9);
        let mut plan = AdversaryPlan::none();
        plan.collude_all_but_one(roster.members(), n(2)).unwrap();
        assert_eq!(plan.compromised_count(), 3);

        let report = evaluate_collusion(&plan, &views, AggFunction::Sum);
        assert_eq!(report.colluders, 3);
        assert_eq!(report.targets, 1, "only the honest member is at risk");
        assert_eq!(report.exposed, 1, "the published attack succeeds");
        assert_eq!(report.verified, 1, "and recovers the exact reading");
        assert!(report.all_verified());
        assert_eq!(report.probability(), 1.0);
    }

    #[test]
    fn fewer_than_m_minus_one_colluders_expose_nothing() {
        let members = [n(1), n(2), n(3), n(4)];
        let readings = [17u64, 23, 5, 40];
        let (_, views) = cluster_views(&members, &readings, AggFunction::Sum, 9);
        // Two colluders, two honest members: information-theoretically
        // blind — each honest member's polynomial is missing two points.
        let mut plan = AdversaryPlan::none();
        plan.assign(n(3), Behavior::ColludePrivacy).unwrap();
        plan.assign(n(4), Behavior::ColludePrivacy).unwrap();
        let report = evaluate_collusion(&plan, &views, AggFunction::Sum);
        assert_eq!(report.targets, 2);
        assert_eq!(report.exposed, 0);
        assert_eq!(report.probability(), 0.0);
    }

    #[test]
    fn partial_assembly_blocks_the_kept_share_derivation() {
        let members = [n(1), n(2), n(3)];
        let readings = [8u64, 9, 10];
        let (roster, mut views) = cluster_views(&members, &readings, AggFunction::Sum, 4);
        // Damage every copy of the victim's assembly mask: a partial
        // F_{p_x} would subtract shares the victim never absorbed, so
        // the solver must refuse it rather than emit garbage.
        let p_x = roster.position(n(2)).unwrap();
        for view in views.values_mut() {
            if let Some(entry) = view.fsums.get_mut(&p_x) {
                entry.1 &= !1;
            }
        }
        let mut plan = AdversaryPlan::none();
        plan.collude_all_but_one(roster.members(), n(2)).unwrap();
        let report = evaluate_collusion(&plan, &views, AggFunction::Sum);
        assert_eq!(report.targets, 1);
        assert_eq!(report.exposed, 0);
    }

    #[test]
    fn reconstruction_works_for_every_victim_position() {
        // The derivation must be position-independent (head, first,
        // last): rotate the victim through the whole roster.
        let members = [n(5), n(9), n(11), n(20), n(31)];
        let readings = [100u64, 200, 300, 400, 500];
        for (v, &victim) in members.iter().enumerate() {
            let (roster, views) = cluster_views(&members, &readings, AggFunction::Sum, 77);
            let mut plan = AdversaryPlan::none();
            plan.collude_all_but_one(roster.members(), victim).unwrap();
            let report = evaluate_collusion(&plan, &views, AggFunction::Sum);
            assert_eq!(report.exposed, 1, "victim at position {v} exposed");
            assert_eq!(report.verified, 1, "victim at position {v} verified");
        }
    }

    #[test]
    fn behavior_codes_are_distinct_and_lawful_is_zero() {
        let behaviors = [
            Behavior::Lawful,
            Behavior::GarbageShares,
            Behavior::PolluteAggregate(Pollution::inflate(1)),
            Behavior::ColludePrivacy,
            Behavior::SelectiveForward,
        ];
        let codes: Vec<u8> = behaviors.iter().map(|b| b.code()).collect();
        let mut unique = codes.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), behaviors.len());
        assert_eq!(Behavior::Lawful.code(), 0);
        assert_eq!(Behavior::Lawful.phase(), "none");
        assert_eq!(Fp::ZERO.to_u64(), 0, "field sanity");
    }
}
