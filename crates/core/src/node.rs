//! The per-node iCPDA state machine.
//!
//! One [`IcpdaNode`] runs on every deployed node (the base station
//! included) and drives the three phases of the protocol:
//!
//! 1. **Query flood & cluster formation** — the base station floods the
//!    query; nodes self-elect as cluster heads, neighbours join, heads
//!    broadcast rosters.
//! 2. **Privacy-preserving intra-cluster aggregation** — members exchange
//!    encrypted blinded shares, broadcast assembled sums, and every
//!    member recovers the cluster aggregate (transparent aggregation).
//! 3. **Integrity-protected upstream aggregation** — cluster aggregates
//!    travel up the flood tree in depth-scheduled slots; every transmission
//!    carries merge references; members and neighbours audit overheard
//!    reports and raise alarms on mismatch; the base station rejects the
//!    round if any alarm arrives.

use crate::adversary::{Behavior, CollusionView};
use crate::attack::Pollution;
use crate::cluster::Roster;
use crate::config::{IcpdaConfig, IntegrityMode, PrivacyMode};
use crate::monitor::{CachedAggregate, CheckOutcome, MonitorCache, ViolationKind};
use crate::msg::{IcpdaMsg, InputClaim, MergedRef};
use crate::reliability::RetryState;
use crate::shares::{
    assemble, generate_shares, generate_shares_t, recover_sum, recover_sum_at, share_from_bytes,
    share_to_bytes, ShareVector,
};
use agg::field::{random_fp, Fp};
use rand::Rng;
// Node state uses ordered collections throughout: iteration order
// feeds assemblies, plain-mode sums, and (in future changes) message
// emission, and DESIGN §6 requires "same seed ⇒ identical trace" —
// BTree maps make the order a property of the data, not the hasher.
use std::collections::{BTreeMap, BTreeSet};
use wsn_crypto::{open, seal, KeyManager, PairwiseKeys};
use wsn_sim::prelude::*;

const TIMER_ELECT: TimerToken = 1;
const TIMER_JOIN: TimerToken = 2;
const TIMER_ROSTER: TimerToken = 3;
const TIMER_SHARES: TimerToken = 4;
const TIMER_REPAIR: TimerToken = 5;
const TIMER_FSUM: TimerToken = 6;
const TIMER_SOLVE: TimerToken = 7;
const TIMER_UPSTREAM: TimerToken = 8;
const TIMER_DECISION: TimerToken = 9;
const TIMER_FSUM_REPAIR: TimerToken = 10;
const TIMER_ROSTER_REPEAT: TimerToken = 11;
const TIMER_RESIGN: TimerToken = 12;
const TIMER_REJOIN: TimerToken = 13;
const TIMER_FLOOD_RELAY: TimerToken = 14;
const TIMER_REPAIR2: TimerToken = 15;
const TIMER_UPSTREAM_REPEAT: TimerToken = 16;
const TIMER_SHARE_DRAIN: TimerToken = 17;
const TIMER_HEAD_CHECK: TimerToken = 18;
const TIMER_PARENT_CHECK: TimerToken = 19;
const TIMER_BEACON: TimerToken = 20;
const TIMER_ANNOUNCE_REPEAT: TimerToken = 21;
const TIMER_JOIN_REPEAT: TimerToken = 22;
const TIMER_SHARES_REPEAT: TimerToken = 23;
const TIMER_FSUM_REPEAT: TimerToken = 24;

// Protocol-phase span names (see DESIGN §12). Spans are recorded per
// node at `ObsLevel::Phases` and bracket the protocol's observable
// phases; with observability off every hook is a single branch.
const PHASE_QUERY_FLOOD: &str = "phase.query_flood";
const PHASE_CLUSTER_FORMATION: &str = "phase.cluster_formation";
const PHASE_SHARE_EXCHANGE: &str = "phase.share_exchange";
const PHASE_AGGREGATION: &str = "phase.aggregation";
const PHASE_ASCENT_VERIFY: &str = "phase.ascent_verify";
const PHASE_CRASH_RECOVERY: &str = "phase.crash_recovery";

/// Opens the protocol-phase span `name` for this node. Re-opening an
/// already-open span is a no-op (first start wins), so repeat paths and
/// multi-round timers need no extra state here.
fn obs_phase_start(ctx: &mut Context<'_, IcpdaMsg>, name: &'static str) {
    if ctx.obs().wants(ObsLevel::Phases) {
        let snap = ctx.obs_snapshot();
        let node = ctx.id().as_u32();
        let now = ctx.now().as_nanos();
        ctx.obs().span_start(name, node, now, snap);
    }
}

/// Closes the protocol-phase span `name` for this node (no-op when the
/// span is not open, so shared exit paths may close unconditionally).
fn obs_phase_end(ctx: &mut Context<'_, IcpdaMsg>, name: &'static str) {
    if ctx.obs().wants(ObsLevel::Phases) {
        let snap = ctx.obs_snapshot();
        let node = ctx.id().as_u32();
        let now = ctx.now().as_nanos();
        ctx.obs().span_end(name, node, now, snap);
    }
}

/// A node's role after cluster formation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Role {
    /// Not yet decided (query not heard or election pending).
    #[default]
    Undecided,
    /// Self-elected cluster head.
    Head,
    /// Member of the cluster headed by the given node.
    Member(NodeId),
    /// Heard the query but found no head to join (or its join was lost):
    /// does not contribute a reading.
    Orphan,
}

/// The base station's end-of-round decision.
#[derive(Clone, Debug, PartialEq)]
pub struct BsDecision {
    /// Componentwise totals received (canonical field representatives).
    pub totals: Vec<u64>,
    /// Sensors included in the totals.
    pub participants: u32,
    /// Decoded statistic.
    pub value: f64,
    /// Pollution alarms received, as `(accuser, accused)` pairs.
    pub alarms: Vec<(NodeId, NodeId)>,
    /// `true` if no alarms arrived and the result is accepted.
    pub accepted: bool,
}

/// Per-node iCPDA protocol state (implements
/// [`wsn_sim::Application`]).
pub struct IcpdaNode {
    config: IcpdaConfig,
    is_base_station: bool,
    reading: u64,
    keys: PairwiseKeys,
    nonce_counter: u64,

    // Query flood.
    level: Option<u16>,
    flood_parent: Option<NodeId>,
    queries_heard: usize,

    // Cluster formation.
    role: Role,
    heads_heard: Vec<NodeId>,
    resigned_heads: BTreeSet<NodeId>,
    has_resigned: bool,
    joiners: Vec<NodeId>,
    roster: Option<Roster>,

    // Share exchange.
    shared: bool,
    /// Shares still to be unicast this round, drained one frame at a time
    /// with random gaps: an m-member cluster would otherwise offer
    /// m·(m−1) frames to the channel in one burst, and hidden-terminal
    /// collisions at that load starve large clusters of shares entirely.
    share_sendq: Vec<(NodeId, ShareVector)>,
    outgoing_shares: BTreeMap<NodeId, ShareVector>,
    received_shares: BTreeMap<NodeId, ShareVector>,
    /// Head-only: sealed shares seen while relaying, keyed `(origin, to)`.
    /// The ciphertext is opaque to the head, so caching it leaks nothing,
    /// and it lets the head answer a share NACK in one in-range frame
    /// instead of a three-frame NACK-forward/relay round trip through the
    /// origin — the dominant repair failure for out-of-range member pairs.
    relay_cache: BTreeMap<(NodeId, NodeId), wsn_crypto::Sealed>,
    // Privacy-off baseline: raw contributions collected at the head.
    raw_readings: BTreeMap<NodeId, ShareVector>,

    // Assembly & solve.
    fsums: BTreeMap<usize, (ShareVector, u64)>,
    cluster_aggregate: Option<CachedAggregate>,

    // Upstream.
    upstream_acc: Vec<Fp>,
    upstream_participants: u32,
    absorbed_inputs: Vec<InputClaim>,
    seen_upstream: BTreeSet<(NodeId, u32)>,
    // Kept as a prepared payload: the duplicate transmission and the
    // parent-reroute path re-send it with a reference-count bump instead
    // of deep-cloning the totals/inputs vectors and re-walking wire_size.
    pending_upstream: Option<SharedPayload<IcpdaMsg>>,
    upstream_sent: bool,
    late_upstream: u32,

    // Reliability: per-message retry budgets (see `crate::reliability`).
    roster_retry: RetryState,
    upstream_retry: RetryState,
    // Cluster-phase budgets, only armed under `cluster_arq`.
    announce_retry: RetryState,
    join_retry: RetryState,
    share_retry: RetryState,
    fsum_retry: RetryState,

    // Integrity.
    monitor: MonitorCache,
    alarms_raised: BTreeSet<NodeId>,
    alarms_forwarded: BTreeSet<(NodeId, NodeId)>,

    // Head bookkeeping for the repeated roster broadcast; members store
    // the value from ClusterInfo so later rounds reuse the stagger.
    my_stagger_ms: u16,

    // Multi-round state.
    current_round: u16,
    pending_flood: Option<SharedPayload<IcpdaMsg>>,

    // Quarantine.
    excluded: bool,

    // Attack.
    pollution: Option<Pollution>,
    slander: Option<NodeId>,
    /// Byzantine behaviour (see [`crate::adversary`]); `Lawful` keeps
    /// every hook dormant, so uncompromised nodes run byte-identically
    /// to a build without the adversary layer.
    behavior: Behavior,

    // Crash recovery (all unused unless `config.crash_recovery`).
    /// Flood levels of neighbours, learnt from their query rebroadcasts;
    /// the candidate pool for rerouting around a silent parent.
    neighbor_levels: BTreeMap<NodeId, u16>,
    /// Any frame heard from our head since we joined it (liveness).
    head_alive_seen: bool,
    /// Any frame heard from our flood parent after our upstream send —
    /// evidence the parent is alive to forward our report.
    parent_forwarded: bool,
    /// Where our upstream report last went (parent, or the reroute
    /// alternate); late forwards follow the same path.
    upstream_target: Option<NodeId>,
    /// Sequence numbers for late-forward message ids (high 16 bits, so
    /// they never collide with the round-numbered originals).
    late_forward_seq: u32,
    /// Base station only: claim sources already absorbed this round;
    /// a repeated source means two copies of the same input arrived via
    /// different paths, and its totals are subtracted once.
    bs_merged_refs: BTreeSet<MergedRef>,

    // Base station.
    bs_alarms: Vec<(NodeId, NodeId)>,
    bs_last_update: Option<SimTime>,
    decisions: Vec<BsDecision>,
}

impl IcpdaNode {
    /// Creates the state machine for one node. Node 0 of the deployment
    /// is conventionally the base station; its `reading` is ignored.
    #[must_use]
    pub fn new(config: IcpdaConfig, is_base_station: bool, reading: u64) -> Self {
        config.validate();
        let components = config.function.components();
        IcpdaNode {
            keys: PairwiseKeys::new(config.key_master),
            config,
            is_base_station,
            reading,
            nonce_counter: 0,
            level: if is_base_station { Some(0) } else { None },
            flood_parent: None,
            queries_heard: 0,
            role: Role::Undecided,
            heads_heard: Vec::new(),
            resigned_heads: BTreeSet::new(),
            has_resigned: false,
            joiners: Vec::new(),
            roster: None,
            shared: false,
            share_sendq: Vec::new(),
            outgoing_shares: BTreeMap::new(),
            received_shares: BTreeMap::new(),
            relay_cache: BTreeMap::new(),
            raw_readings: BTreeMap::new(),
            fsums: BTreeMap::new(),
            cluster_aggregate: None,
            upstream_acc: vec![Fp::ZERO; components],
            upstream_participants: 0,
            absorbed_inputs: Vec::new(),
            seen_upstream: BTreeSet::new(),
            pending_upstream: None,
            upstream_sent: false,
            late_upstream: 0,
            roster_retry: RetryState::new(),
            upstream_retry: RetryState::new(),
            announce_retry: RetryState::new(),
            join_retry: RetryState::new(),
            share_retry: RetryState::new(),
            fsum_retry: RetryState::new(),
            monitor: MonitorCache::new(),
            alarms_raised: BTreeSet::new(),
            alarms_forwarded: BTreeSet::new(),
            my_stagger_ms: 0,
            current_round: 0,
            pending_flood: None,
            excluded: false,
            pollution: None,
            slander: None,
            behavior: Behavior::Lawful,
            neighbor_levels: BTreeMap::new(),
            head_alive_seen: false,
            parent_forwarded: false,
            upstream_target: None,
            late_forward_seq: 0,
            bs_merged_refs: BTreeSet::new(),
            bs_alarms: Vec::new(),
            bs_last_update: None,
            decisions: Vec::new(),
        }
    }

    /// Installs a data-pollution attack on this node.
    pub fn set_pollution(&mut self, pollution: Pollution) {
        self.pollution = Some(pollution);
    }

    /// Installs a Byzantine behaviour (see [`crate::adversary`]).
    /// [`Behavior::Lawful`] restores honest execution.
    pub fn set_behavior(&mut self, behavior: Behavior) {
        self.behavior = behavior;
    }

    /// The node's installed Byzantine behaviour.
    #[must_use]
    pub fn behavior(&self) -> Behavior {
        self.behavior
    }

    /// Snapshots the round state the collusion evaluation pools: the
    /// roster, the shares this node received and sent, and the `FSum`
    /// assemblies it holds (plus the ground-truth reading, used only to
    /// verify reconstructions — see
    /// [`crate::adversary::evaluate_collusion`]).
    #[must_use]
    pub fn collusion_view(&self) -> CollusionView {
        CollusionView {
            roster: self.participating_roster().cloned(),
            shared: self.shared,
            reading: self.reading,
            received_shares: self.received_shares.clone(),
            outgoing_shares: self.outgoing_shares.clone(),
            fsums: self.fsums.clone(),
        }
    }

    /// Replaces this node's private reading (periodic sensing between
    /// rounds of a multi-round session). Takes effect at the next share
    /// exchange.
    pub fn set_reading(&mut self, reading: u64) {
        self.reading = reading;
    }

    /// Installs a slander attack: this node raises a false pollution
    /// alarm against `target` every round — the denial-of-service the
    /// paper's discussion anticipates, defeated by accuser credibility
    /// tracking in [`crate::session::run_session`].
    pub fn set_slander(&mut self, target: NodeId) {
        self.slander = Some(target);
    }

    /// Quarantines this node: it takes no part in the round (the base
    /// station's recovery mechanism — accused polluters are excluded
    /// from subsequent rounds and the network routes around them).
    pub fn set_excluded(&mut self) {
        self.excluded = true;
    }

    /// Whether this node is quarantined.
    #[must_use]
    pub fn is_excluded(&self) -> bool {
        self.excluded
    }

    /// The node's role after cluster formation.
    #[must_use]
    pub fn role(&self) -> Role {
        self.role
    }

    /// Flood-tree depth, once the query was heard.
    #[must_use]
    pub fn level(&self) -> Option<u16> {
        self.level
    }

    /// The cluster roster this node belongs to (if any).
    #[must_use]
    pub fn roster(&self) -> Option<&Roster> {
        self.roster.as_ref()
    }

    /// Whether this node transmitted its blinded shares (it exposed
    /// itself to the privacy analysis).
    #[must_use]
    pub fn shared(&self) -> bool {
        self.shared
    }

    /// The cluster aggregate this node recovered (members and heads of
    /// solved clusters).
    #[must_use]
    pub fn cluster_aggregate(&self) -> Option<&CachedAggregate> {
        self.cluster_aggregate.as_ref()
    }

    /// Whether this node's reading is included in a solved cluster
    /// aggregate (it will reach the base station unless lost upstream).
    #[must_use]
    pub fn reading_included(&self) -> bool {
        match (&self.cluster_aggregate, &self.roster) {
            (Some(_), Some(roster)) => {
                // Included iff this node contributed shares and the solve
                // succeeded; the solved mask is reflected in fsums — a
                // node that shared is in every consistent mask.
                self.shared && roster.len() >= self.config.min_cluster_size
            }
            _ => false,
        }
    }

    /// Raw `(roster_position, contributor_mask)` pairs of the assemblies
    /// this node collected — diagnostic aid for cluster-failure analysis.
    #[doc(hidden)]
    #[must_use]
    pub fn debug_fsums(&self) -> Vec<(usize, u64)> {
        let mut v: Vec<(usize, u64)> = self.fsums.iter().map(|(&p, &(_, m))| (p, m)).collect();
        v.sort_unstable();
        v
    }

    /// Senders whose shares this node holds — diagnostic aid.
    #[doc(hidden)]
    #[must_use]
    pub fn debug_shares_from(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.received_shares.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// The base station's decision for the most recent completed round
    /// (node 0 only).
    #[must_use]
    pub fn decision(&self) -> Option<&BsDecision> {
        self.decisions.last()
    }

    /// All completed rounds' decisions, in order (node 0 only).
    #[must_use]
    pub fn decisions(&self) -> &[BsDecision] {
        &self.decisions
    }

    /// The round currently in progress (the first query is round 0).
    #[must_use]
    pub fn current_round(&self) -> u16 {
        self.current_round
    }

    /// Upstream messages that arrived after this node had already
    /// transmitted its own (their data is lost for this round).
    #[must_use]
    pub fn late_upstream(&self) -> u32 {
        self.late_upstream
    }

    /// Virtual time of the last upstream absorption at the base station.
    #[must_use]
    pub fn last_update(&self) -> Option<SimTime> {
        self.bs_last_update
    }

    fn next_nonce(&mut self, self_id: NodeId) -> u64 {
        self.nonce_counter += 1;
        (u64::from(self_id.as_u32()) << 24) | self.nonce_counter
    }

    fn components(&self) -> usize {
        self.config.function.components()
    }

    fn participating_roster(&self) -> Option<&Roster> {
        self.roster
            .as_ref()
            .filter(|r| r.len() >= self.config.min_cluster_size)
    }

    /// Sends `share` (raw) to `target`, sealed end-to-end, relaying via
    /// the head when the target is out of radio range.
    fn send_share(
        &mut self,
        ctx: &mut Context<'_, IcpdaMsg>,
        cluster: NodeId,
        target: NodeId,
        share: &ShareVector,
    ) {
        let me = ctx.id();
        let key = self
            .keys
            .link_key(me, target)
            .expect("invariant: the pairwise scheme shares a key for every node pair");
        let nonce = self.next_nonce(me);
        let sealed = seal(key, nonce, &share_to_bytes(share));
        let direct = ctx.neighbors().binary_search(&target).is_ok();
        if direct {
            ctx.send(
                target,
                IcpdaMsg::Share {
                    cluster,
                    origin: me,
                    sealed,
                },
            );
        } else {
            // Out of range: relay via the head (sealed end-to-end, the
            // head cannot read it). The head is always a neighbour of
            // both members.
            ctx.send(
                cluster,
                IcpdaMsg::ShareRelay {
                    cluster,
                    origin: me,
                    to: target,
                    sealed,
                },
            );
            ctx.metrics().bump("icpda_share_relayed");
        }
        ctx.metrics().bump("icpda_share_sent");
    }

    fn handle_query(&mut self, ctx: &mut Context<'_, IcpdaMsg>, from: NodeId, level: u16) {
        if self.excluded {
            return;
        }
        self.queries_heard += 1;
        // Every rebroadcast names the sender's depth: remember it, so a
        // node whose parent dies can reroute to another lower-level
        // neighbour (crash recovery).
        self.neighbor_levels.insert(from, level);
        if self.is_base_station || self.level.is_some() {
            return;
        }
        let my_level = level.saturating_add(1);
        self.level = Some(my_level);
        self.flood_parent = Some(from);
        obs_phase_start(ctx, PHASE_QUERY_FLOOD);
        // Jittered rebroadcast: neighbours reacting to the same query
        // copy would otherwise all transmit within the tiny MAC jitter
        // and collide (broadcast storm).
        self.pending_flood = Some(SharedPayload::new(IcpdaMsg::Query {
            level: level.saturating_add(1),
        }));
        let s = self.config.schedule;
        let relay_jitter = SimDuration::from_nanos(
            ctx.rng()
                .gen_range(0..s.flood_relay_jitter.as_nanos().max(1)),
        );
        ctx.set_timer(relay_jitter, TIMER_FLOOD_RELAY);
        let elect_jitter =
            SimDuration::from_nanos(ctx.rng().gen_range(0..s.elect_after.as_nanos().max(2) / 2));
        ctx.set_timer(s.elect_after + elect_jitter, TIMER_ELECT);
        // Upstream slot: depth-scheduled with intra-slot dispersion (same
        // hidden-terminal reasoning as TAG's slot dispersion).
        let dispersion_ns = s.upstream_slot().as_nanos() * 6 / 10;
        let jitter = if dispersion_ns == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(ctx.rng().gen_range(0..dispersion_ns))
        };
        ctx.set_timer(s.upstream_time(my_level) + jitter, TIMER_UPSTREAM);
    }

    fn handle_elect(&mut self, ctx: &mut Context<'_, IcpdaMsg>) {
        let p = self.config.election.probability(self.queries_heard);
        let is_head = p >= 1.0 || ctx.rng().gen_bool(p.clamp(0.0, 1.0));
        let s = self.config.schedule;
        if is_head {
            self.role = Role::Head;
            ctx.broadcast(IcpdaMsg::HeadAnnounce);
            if self.config.reliability.cluster_arq {
                // A lost announce means nearby members never even consider
                // this cluster; repeat it on the budget (members dedup via
                // `heads_heard`).
                self.announce_retry = RetryState::new();
                if let Some(repeat) = self.announce_retry.next_delay(
                    &self.config.reliability,
                    s.upstream_repeat_after,
                    s.upstream_repeat_jitter,
                    ctx.rng(),
                ) {
                    ctx.set_timer(repeat, TIMER_ANNOUNCE_REPEAT);
                }
            }
            // Dispersed so concurrent heads' roster broadcasts (the single
            // point of failure for a whole cluster) do not collide.
            ctx.set_timer(s.resign_after, TIMER_RESIGN);
            let jitter = SimDuration::from_nanos(
                ctx.rng().gen_range(0..s.roster_after.as_nanos().max(2) / 3),
            );
            ctx.set_timer(s.roster_after + jitter, TIMER_ROSTER);
            ctx.metrics().bump("icpda_heads");
            if self.config.crash_recovery {
                // Two liveness beacons before the roster deadline: members
                // that hear neither (nor anything else from us) declare us
                // dead and fall back.
                for frac in [4u64, 2u64] {
                    let beacon_jitter = SimDuration::from_nanos(
                        ctx.rng().gen_range(0..s.nack_jitter.as_nanos().max(1)),
                    );
                    ctx.set_timer(s.roster_after / frac + beacon_jitter, TIMER_BEACON);
                }
            }
        } else {
            // Small dispersion so join unicasts do not collide at heads.
            let jitter =
                SimDuration::from_nanos(ctx.rng().gen_range(0..s.join_after.as_nanos().max(1) / 2));
            ctx.set_timer(s.join_after + jitter, TIMER_JOIN);
        }
    }

    fn handle_join_timer(&mut self, ctx: &mut Context<'_, IcpdaMsg>) {
        if self.heads_heard.is_empty() {
            self.role = Role::Orphan;
            ctx.metrics().bump("icpda_orphan_no_head");
            obs_phase_end(ctx, PHASE_CLUSTER_FORMATION);
            return;
        }
        let pick = ctx.rng().gen_range(0..self.heads_heard.len());
        let head = self.heads_heard[pick];
        self.role = Role::Member(head);
        ctx.send(head, IcpdaMsg::Join { head });
        self.arm_join_repeat(ctx);
        if self.config.crash_recovery {
            self.schedule_head_check(ctx);
        }
    }

    /// Under `cluster_arq`, blindly repeats the join unicast on the retry
    /// budget: a lost join silently shrinks the roster (the head never
    /// learns the member exists), which no later repair round can undo.
    fn arm_join_repeat(&mut self, ctx: &mut Context<'_, IcpdaMsg>) {
        if !self.config.reliability.cluster_arq {
            return;
        }
        let s = self.config.schedule;
        self.join_retry = RetryState::new();
        if let Some(repeat) = self.join_retry.next_delay(
            &self.config.reliability,
            s.upstream_repeat_after,
            s.upstream_repeat_jitter,
            ctx.rng(),
        ) {
            ctx.set_timer(repeat, TIMER_JOIN_REPEAT);
        }
    }

    fn handle_join_repeat(&mut self, ctx: &mut Context<'_, IcpdaMsg>) {
        let Role::Member(head) = self.role else {
            return;
        };
        // The roster doubles as the join's implicit acknowledgement.
        if self.roster.is_some() || self.resigned_heads.contains(&head) {
            return;
        }
        ctx.metrics().bump("icpda_rel_timeout");
        ctx.send(head, IcpdaMsg::Join { head });
        ctx.metrics().bump("icpda_rel_retransmit");
        let rel = self.config.reliability;
        let s = self.config.schedule;
        if let Some(repeat) = self.join_retry.next_delay(
            &rel,
            s.upstream_repeat_after,
            s.upstream_repeat_jitter,
            ctx.rng(),
        ) {
            ctx.set_timer(repeat, TIMER_JOIN_REPEAT);
        } else {
            ctx.metrics().bump("icpda_rel_exhausted");
        }
    }

    fn handle_announce_repeat(&mut self, ctx: &mut Context<'_, IcpdaMsg>) {
        if self.role != Role::Head || self.has_resigned {
            return;
        }
        ctx.metrics().bump("icpda_rel_timeout");
        ctx.broadcast(IcpdaMsg::HeadAnnounce);
        ctx.metrics().bump("icpda_rel_retransmit");
        let rel = self.config.reliability;
        let s = self.config.schedule;
        if let Some(repeat) = self.announce_retry.next_delay(
            &rel,
            s.upstream_repeat_after,
            s.upstream_repeat_jitter,
            ctx.rng(),
        ) {
            ctx.set_timer(repeat, TIMER_ANNOUNCE_REPEAT);
        } else {
            ctx.metrics().bump("icpda_rel_exhausted");
        }
    }

    /// Arms the head-liveness deadline: if nothing is heard from the
    /// joined head (beacon, roster, anything) by then, the head is
    /// presumed dead and this node falls back to another cluster.
    fn schedule_head_check(&mut self, ctx: &mut Context<'_, IcpdaMsg>) {
        self.head_alive_seen = false;
        let s = self.config.schedule;
        let jitter =
            SimDuration::from_nanos(ctx.rng().gen_range(0..s.nack_jitter.as_nanos().max(1)));
        ctx.set_timer(s.roster_after + jitter, TIMER_HEAD_CHECK);
    }

    fn handle_head_check(&mut self, ctx: &mut Context<'_, IcpdaMsg>) {
        if !self.config.crash_recovery {
            return;
        }
        let Role::Member(head) = self.role else {
            return;
        };
        if self.head_alive_seen || self.roster.is_some() {
            return;
        }
        // Silent head: treat it like a resignation — re-join another
        // in-range head, or degrade to orphan (and later direct-report).
        ctx.metrics().bump("icpda_head_dead_detected");
        obs_phase_start(ctx, PHASE_CRASH_RECOVERY);
        self.resigned_heads.insert(head);
        self.schedule_rejoin(ctx);
    }

    /// Under-sized heads give up their cluster so their joiners (and
    /// they themselves) can merge into viable neighbouring clusters —
    /// the paper family's treatment of clusters below the privacy
    /// minimum.
    fn handle_resign_timer(&mut self, ctx: &mut Context<'_, IcpdaMsg>) {
        if self.role != Role::Head || self.roster.is_some() {
            return;
        }
        if self.joiners.len() + 1 >= self.config.min_cluster_size {
            return;
        }
        self.has_resigned = true;
        self.joiners.clear();
        ctx.broadcast(IcpdaMsg::Resign { head: ctx.id() });
        ctx.metrics().bump("icpda_head_resigned");
        self.schedule_rejoin(ctx);
    }

    fn schedule_rejoin(&mut self, ctx: &mut Context<'_, IcpdaMsg>) {
        let base = self.config.schedule.rejoin_after;
        let jitter = SimDuration::from_nanos(ctx.rng().gen_range(0..base.as_nanos().max(2)));
        ctx.set_timer(base + jitter, TIMER_REJOIN);
    }

    fn handle_rejoin_timer(&mut self, ctx: &mut Context<'_, IcpdaMsg>) {
        // Only re-join if we still lack a viable cluster.
        match self.role {
            Role::Member(h) if !self.resigned_heads.contains(&h) => return,
            Role::Head if !self.has_resigned => return,
            _ => {}
        }
        let me = ctx.id();
        let candidates: Vec<NodeId> = self
            .heads_heard
            .iter()
            .copied()
            .filter(|h| *h != me && !self.resigned_heads.contains(h))
            .collect();
        if candidates.is_empty() {
            self.role = Role::Orphan;
            ctx.metrics().bump("icpda_orphan_no_head");
            return;
        }
        let head = candidates[ctx.rng().gen_range(0..candidates.len())];
        self.role = Role::Member(head);
        ctx.send(head, IcpdaMsg::Join { head });
        self.arm_join_repeat(ctx);
        ctx.metrics().bump("icpda_rejoined");
        if self.config.crash_recovery {
            self.schedule_head_check(ctx);
        }
    }

    fn handle_roster_timer(&mut self, ctx: &mut Context<'_, IcpdaMsg>) {
        if self.has_resigned || self.role != Role::Head {
            return;
        }
        let me = ctx.id();
        let mut joiners = std::mem::take(&mut self.joiners);
        joiners.truncate(self.config.max_cluster_size.saturating_sub(1));
        let roster = Roster::new(me, &joiners);
        // Random per-cluster stagger: every member shifts the whole share
        // exchange by this amount, so concurrent clusters do not burst at
        // the same instants (the dominant collision source otherwise).
        let stagger_bound_ms = self.config.schedule.cluster_stagger.as_nanos() / 1_000_000;
        let stagger_ms = if stagger_bound_ms == 0 {
            0
        } else {
            ctx.rng()
                .gen_range(0..stagger_bound_ms.min(u64::from(u16::MAX))) as u16
        };
        self.my_stagger_ms = stagger_ms;
        ctx.broadcast(IcpdaMsg::ClusterInfo {
            head: me,
            members: roster.members().to_vec(),
            stagger_ms,
        });
        let participates = roster.len() >= self.config.min_cluster_size;
        self.roster = Some(roster);
        if participates {
            // Losing the roster kills the whole cluster, so the head
            // blindly repeats it on its retry budget (receivers are
            // idempotent).
            let s = self.config.schedule;
            self.roster_retry = RetryState::new();
            if let Some(repeat) = self.roster_retry.next_delay(
                &self.config.reliability,
                s.roster_repeat_after,
                s.roster_repeat_jitter,
                ctx.rng(),
            ) {
                ctx.set_timer(repeat, TIMER_ROSTER_REPEAT);
            }
            self.schedule_share_phases(ctx, stagger_ms);
        } else {
            ctx.metrics().bump("icpda_cluster_too_small");
        }
    }

    fn handle_roster_repeat(&mut self, ctx: &mut Context<'_, IcpdaMsg>) {
        if let Some(roster) = self.roster.clone() {
            // Without ACKs the deadline itself is the timeout signal.
            ctx.metrics().bump("icpda_rel_timeout");
            ctx.broadcast(IcpdaMsg::ClusterInfo {
                head: ctx.id(),
                members: roster.members().to_vec(),
                stagger_ms: self.my_stagger_ms,
            });
            ctx.metrics().bump("icpda_rel_retransmit");
            let s = self.config.schedule;
            if let Some(repeat) = self.roster_retry.next_delay(
                &self.config.reliability,
                s.roster_repeat_after,
                s.roster_repeat_jitter,
                ctx.rng(),
            ) {
                ctx.set_timer(repeat, TIMER_ROSTER_REPEAT);
            } else {
                ctx.metrics().bump("icpda_rel_exhausted");
            }
        }
    }

    fn schedule_share_phases(&mut self, ctx: &mut Context<'_, IcpdaMsg>, stagger_ms: u16) {
        let s = self.config.schedule;
        let stagger = SimDuration::from_millis(u64::from(stagger_ms));
        // Dispersion over the first quarter of the share window keeps the
        // unicast bursts from synchronising across members while still
        // finishing (start jitter plus per-frame drain gaps) well before
        // the repair deadline.
        let window = s.repair_after.saturating_sub(s.shares_after) / 4;
        let jitter = if window.is_zero() {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(ctx.rng().gen_range(0..window.as_nanos()))
        };
        ctx.set_timer(stagger + s.shares_after + jitter, TIMER_SHARES);
        if self.config.share_repair {
            // Every member discovers its gaps at the same deadline, so
            // un-jittered NACK broadcasts would collide at the head.
            let nack_jitter =
                SimDuration::from_nanos(ctx.rng().gen_range(0..s.nack_jitter.as_nanos().max(1)));
            ctx.set_timer(stagger + s.repair_after + nack_jitter, TIMER_REPAIR);
            let nack2_jitter =
                SimDuration::from_nanos(ctx.rng().gen_range(0..s.nack_jitter.as_nanos().max(1)));
            ctx.set_timer(
                stagger + s.repair_after + s.repair2_offset + nack2_jitter,
                TIMER_REPAIR2,
            );
        }
        let fsum_window = s.solve_after.saturating_sub(s.fsum_after) / 2;
        let fsum_jitter = if fsum_window.is_zero() {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(ctx.rng().gen_range(0..fsum_window.as_nanos()))
        };
        ctx.set_timer(stagger + s.fsum_after + fsum_jitter, TIMER_FSUM);
        if self.config.share_repair {
            let fsum_nack_jitter =
                SimDuration::from_nanos(ctx.rng().gen_range(0..s.nack_jitter.as_nanos().max(1)));
            ctx.set_timer(
                stagger + s.fsum_repair_after + fsum_nack_jitter,
                TIMER_FSUM_REPAIR,
            );
        }
        ctx.set_timer(stagger + s.solve_after, TIMER_SOLVE);
    }

    fn handle_cluster_info(
        &mut self,
        ctx: &mut Context<'_, IcpdaMsg>,
        from: NodeId,
        head: NodeId,
        members: &[NodeId],
        stagger_ms: u16,
    ) {
        // Only the head itself may fix its cluster's roster.
        if from != head || self.role != Role::Member(head) || self.roster.is_some() {
            return;
        }
        let Ok(roster) = Roster::from_wire(head, members) else {
            ctx.metrics().bump("icpda_bad_roster");
            return;
        };
        if !roster.contains(ctx.id()) {
            // Our join was lost or the cluster was full.
            self.role = Role::Orphan;
            ctx.metrics().bump("icpda_orphan_join_lost");
            obs_phase_end(ctx, PHASE_CLUSTER_FORMATION);
            return;
        }
        let participates = roster.len() >= self.config.min_cluster_size;
        self.my_stagger_ms = stagger_ms;
        self.roster = Some(roster);
        obs_phase_end(ctx, PHASE_CLUSTER_FORMATION);
        if participates {
            self.schedule_share_phases(ctx, stagger_ms);
        }
    }

    /// Clears one round's aggregation state and schedules the next
    /// round's phases over the persistent cluster structure.
    fn begin_round(&mut self, ctx: &mut Context<'_, IcpdaMsg>, round: u16) {
        self.current_round = round;
        self.received_shares.clear();
        self.share_sendq.clear();
        self.outgoing_shares.clear();
        self.relay_cache.clear();
        self.raw_readings.clear();
        self.fsums.clear();
        self.cluster_aggregate = None;
        self.shared = false;
        self.upstream_acc = vec![Fp::ZERO; self.components()];
        self.upstream_participants = 0;
        self.absorbed_inputs.clear();
        self.upstream_sent = false;
        self.pending_upstream = None;
        self.upstream_retry = RetryState::new();
        self.roster_retry = RetryState::new();
        self.share_retry = RetryState::new();
        self.fsum_retry = RetryState::new();
        self.alarms_raised.clear();
        self.alarms_forwarded.clear();
        self.parent_forwarded = false;
        self.upstream_target = None;
        self.bs_merged_refs.clear();
        // Audit material is per-round: a stale cluster aggregate from the
        // previous round would convict an honest head as soon as the
        // readings change.
        self.monitor = MonitorCache::new();
        if self.is_base_station {
            return;
        }
        // Re-join the relay schedule for this round.
        if let Some(level) = self.level {
            let s = self.config.schedule;
            let dispersion_ns = s.upstream_slot().as_nanos() * 6 / 10;
            let jitter = if dispersion_ns == 0 {
                SimDuration::ZERO
            } else {
                SimDuration::from_nanos(ctx.rng().gen_range(0..dispersion_ns))
            };
            ctx.set_timer(s.upstream_time(level) + jitter, TIMER_UPSTREAM);
        }
        if self.participating_roster().is_some() {
            let stagger = self.my_stagger_ms;
            self.schedule_share_phases(ctx, stagger);
        }
    }

    fn handle_new_round(&mut self, ctx: &mut Context<'_, IcpdaMsg>, round: u16) {
        if self.excluded || self.is_base_station || round != self.current_round + 1 {
            return;
        }
        self.begin_round(ctx, round);
        // Flood the round marker onward with the usual jitter.
        self.pending_flood = Some(SharedPayload::new(IcpdaMsg::NewRound { round }));
        let relay_jitter = SimDuration::from_nanos(
            ctx.rng()
                .gen_range(0..self.config.schedule.flood_relay_jitter.as_nanos().max(1)),
        );
        ctx.set_timer(relay_jitter, TIMER_FLOOD_RELAY);
    }

    fn handle_shares_timer(&mut self, ctx: &mut Context<'_, IcpdaMsg>) {
        let Some(roster) = self.participating_roster().cloned() else {
            return;
        };
        let me = ctx.id();
        let contribution = self.config.function.encode(self.reading);
        if self.config.privacy == PrivacyMode::Off {
            // Plain clustering: the raw contribution goes straight to
            // the head (link-encrypted, but the head reads it).
            self.shared = true;
            let raw: ShareVector = contribution.iter().map(|&c| Fp::new(c)).collect();
            if me == roster.head() {
                self.raw_readings.insert(me, raw);
            } else {
                let key = self
                    .keys
                    .link_key(me, roster.head())
                    .expect("invariant: the pairwise scheme shares a key for every node pair");
                let nonce = self.next_nonce(me);
                let sealed = seal(key, nonce, &share_to_bytes(&raw));
                ctx.send(
                    roster.head(),
                    IcpdaMsg::RawReading {
                        cluster: roster.head(),
                        sealed,
                    },
                );
                ctx.metrics().bump("icpda_raw_sent");
            }
            return;
        }
        let Some(my_pos) = roster.position(me) else {
            return;
        };
        let shares = if self.config.crash_recovery {
            // Threshold sharing: any `min_cluster_size` surviving
            // assemblies reconstruct the cluster sum, so a member dying
            // between its share exchange and the FSum broadcast no longer
            // kills the whole cluster. The price is a lower collusion
            // bound (threshold − 1 instead of m − 1 colluders).
            let threshold = self.config.min_cluster_size.min(roster.len());
            generate_shares_t(&contribution, roster.len(), threshold, ctx.rng())
        } else {
            generate_shares(&contribution, roster.len(), ctx.rng())
        };
        self.shared = true;
        // Byzantine hook (share exchange): a GarbageShares node swaps
        // every outgoing evaluation for fresh uniform field elements —
        // its cluster's recovered sum is silently corrupted. The extra
        // draws come from this node's own RNG stream, so honest nodes
        // draw exactly what they would in a clean run.
        let garbage = self.behavior == Behavior::GarbageShares;
        if garbage {
            ctx.metrics().bump("icpda_adv_garbage_shares");
            ctx.trace_adversary(self.behavior.code());
        }
        // Keep own share locally.
        self.received_shares.insert(me, shares[my_pos].clone());
        for (j, &member) in roster.members().iter().enumerate() {
            if member == me {
                continue;
            }
            let share = if garbage {
                (0..shares[j].len()).map(|_| random_fp(ctx.rng())).collect()
            } else {
                shares[j].clone()
            };
            self.outgoing_shares.insert(member, share.clone());
            // Queue rather than send: the drain timer spaces the m−1
            // unicasts across the share window (see `share_sendq`).
            self.share_sendq.push((member, share));
        }
        // LIFO drain order doesn't matter; what matters is the spacing.
        self.drain_one_share(ctx);
        if self.config.reliability.cluster_arq {
            // Blind full re-sends on the retry budget: share unicasts have
            // no broadcast redundancy, and the NACK repair rounds
            // themselves ride the same lossy channel. Receivers
            // overwrite-insert, so duplicates are free.
            self.share_retry = RetryState::new();
            self.arm_shares_repeat(ctx);
        }
    }

    /// The base delay between blind share re-sends: a sixth of the
    /// share→repair gap, so the whole budget (with exponential backoff)
    /// still lands around the NACK repair rounds, before assembly.
    fn shares_repeat_base(&self) -> SimDuration {
        let s = self.config.schedule;
        s.repair_after.saturating_sub(s.shares_after) / 6
    }

    fn arm_shares_repeat(&mut self, ctx: &mut Context<'_, IcpdaMsg>) -> bool {
        let base = self.shares_repeat_base();
        let jitter = self.config.schedule.nack_jitter;
        let rel = self.config.reliability;
        if let Some(repeat) = self.share_retry.next_delay(&rel, base, jitter, ctx.rng()) {
            ctx.set_timer(repeat, TIMER_SHARES_REPEAT);
            true
        } else {
            false
        }
    }

    /// A blind share re-send (`cluster_arq` only): re-queues every
    /// outgoing share through the drain spacing.
    fn handle_shares_repeat(&mut self, ctx: &mut Context<'_, IcpdaMsg>) {
        if self.config.privacy == PrivacyMode::Off || !self.shared {
            return;
        }
        if self.participating_roster().is_none() || self.outgoing_shares.is_empty() {
            return;
        }
        ctx.metrics().bump("icpda_rel_timeout");
        let resend: Vec<(NodeId, ShareVector)> = self
            .outgoing_shares
            .iter()
            .map(|(member, share)| (*member, share.clone()))
            .collect();
        ctx.metrics()
            .add("icpda_rel_retransmit", resend.len() as u64);
        let idle = self.share_sendq.is_empty();
        self.share_sendq.extend(resend);
        if idle {
            self.drain_one_share(ctx);
        }
        if !self.arm_shares_repeat(ctx) {
            ctx.metrics().bump("icpda_rel_exhausted");
        }
    }

    /// Sends the next queued share and, if any remain, re-arms the drain
    /// timer with a random gap sized so the whole queue lands well before
    /// the repair deadline.
    fn drain_one_share(&mut self, ctx: &mut Context<'_, IcpdaMsg>) {
        let Some((target, share)) = self.share_sendq.pop() else {
            return;
        };
        let Some(roster) = self.participating_roster() else {
            self.share_sendq.clear();
            return;
        };
        let head = roster.head();
        let m = roster.len().max(1) as u64;
        self.send_share(ctx, head, target, &share);
        if !self.share_sendq.is_empty() {
            let s = self.config.schedule;
            // Same basis as the batch-start jitter: half the share→repair
            // gap, split across the cluster's frames.
            let window = s.repair_after.saturating_sub(s.shares_after) / 2;
            let gap_bound = (window.as_nanos() / m).max(2);
            let gap = SimDuration::from_nanos(ctx.rng().gen_range(0..gap_bound));
            ctx.set_timer(gap, TIMER_SHARE_DRAIN);
        }
    }

    fn handle_raw_reading(
        &mut self,
        ctx: &mut Context<'_, IcpdaMsg>,
        from: NodeId,
        cluster: NodeId,
        sealed: &wsn_crypto::Sealed,
    ) {
        let me = ctx.id();
        if me != cluster || self.config.privacy != PrivacyMode::Off {
            return;
        }
        let Some(roster) = self.roster.as_ref() else {
            return;
        };
        if !roster.contains(from) {
            return;
        }
        let Some(key) = self.keys.link_key(from, me) else {
            return;
        };
        match open(key, sealed).and_then(|bytes| share_from_bytes(&bytes)) {
            Some(raw) if raw.len() == self.components() => {
                self.raw_readings.insert(from, raw);
            }
            _ => ctx.metrics().bump("icpda_raw_bad"),
        }
    }

    fn handle_repair_timer(&mut self, ctx: &mut Context<'_, IcpdaMsg>) {
        if self.config.privacy == PrivacyMode::Off {
            return;
        }
        let Some(roster) = self.participating_roster().cloned() else {
            return;
        };
        let missing: Vec<NodeId> = roster
            .members()
            .iter()
            .copied()
            .filter(|m| !self.received_shares.contains_key(m))
            .collect();
        if !missing.is_empty() {
            ctx.metrics()
                .add("icpda_shares_missing", missing.len() as u64);
            ctx.broadcast(IcpdaMsg::ShareNack {
                cluster: roster.head(),
                requester: ctx.id(),
                missing,
            });
        }
    }

    fn handle_share_nack(
        &mut self,
        ctx: &mut Context<'_, IcpdaMsg>,
        cluster: NodeId,
        requester: NodeId,
        missing: &[NodeId],
    ) {
        let me = ctx.id();
        let Some(roster) = self.roster.as_ref() else {
            return;
        };
        if roster.head() != cluster || !roster.contains(requester) {
            return;
        }
        // The head forwards the NACK to missing members out of the
        // requester's radio range (cluster diameter is two hops, so a
        // broadcast NACK alone cannot reach every addressee).
        if me == cluster {
            let forwards: Vec<NodeId> = missing
                .iter()
                .copied()
                .filter(|m| *m != me && *m != requester && roster.contains(*m))
                .collect();
            for target in forwards {
                // A share the head once relayed can be replayed straight
                // from the cache: one in-range frame, no origin round trip.
                if let Some(sealed) = self.relay_cache.get(&(target, requester)) {
                    ctx.metrics().bump("icpda_share_cache_replayed");
                    ctx.send(
                        requester,
                        IcpdaMsg::Share {
                            cluster,
                            origin: target,
                            sealed: sealed.clone(),
                        },
                    );
                    continue;
                }
                ctx.metrics().bump("icpda_nack_forwarded");
                ctx.send(
                    target,
                    IcpdaMsg::ShareNack {
                        cluster,
                        requester,
                        missing: vec![target],
                    },
                );
            }
        }
        if !missing.contains(&me) || requester == me {
            return;
        }
        if let Some(share) = self.outgoing_shares.get(&requester).cloned() {
            ctx.metrics().bump("icpda_share_resent");
            self.send_share(ctx, cluster, requester, &share);
        }
    }

    fn handle_share(
        &mut self,
        ctx: &mut Context<'_, IcpdaMsg>,
        origin: NodeId,
        cluster: NodeId,
        sealed: &wsn_crypto::Sealed,
    ) {
        let me = ctx.id();
        let Some(roster) = self.roster.as_ref() else {
            return;
        };
        if roster.head() != cluster || !roster.contains(origin) {
            return;
        }
        let Some(key) = self.keys.link_key(origin, me) else {
            return;
        };
        match open(key, sealed).and_then(|bytes| share_from_bytes(&bytes)) {
            Some(share) if share.len() == self.components() => {
                self.received_shares.insert(origin, share);
            }
            _ => ctx.metrics().bump("icpda_share_bad"),
        }
    }

    fn handle_share_relay(
        &mut self,
        ctx: &mut Context<'_, IcpdaMsg>,
        cluster: NodeId,
        origin: NodeId,
        to: NodeId,
        sealed: wsn_crypto::Sealed,
    ) {
        // Only the head relays, and only within its own cluster.
        if ctx.id() != cluster {
            return;
        }
        if let Some(roster) = self.roster.as_ref() {
            if roster.contains(origin) && roster.contains(to) {
                // The cache doubles as the seen-set: a byte-identical
                // sealed share is a channel-level duplicate of a relay
                // already forwarded (ARQ re-sends carry fresh nonces, so
                // they pass this check and are forwarded again).
                if self.relay_cache.get(&(origin, to)) == Some(&sealed) {
                    ctx.metrics().bump("icpda_rel_duplicate");
                    return;
                }
                ctx.metrics().bump("icpda_relay_forwarded");
                self.relay_cache.insert((origin, to), sealed.clone());
                ctx.send(
                    to,
                    IcpdaMsg::Share {
                        cluster,
                        origin,
                        sealed,
                    },
                );
            }
        }
    }

    fn handle_fsum_timer(&mut self, ctx: &mut Context<'_, IcpdaMsg>) {
        if self.config.privacy == PrivacyMode::Off {
            return;
        }
        let Some(roster) = self.participating_roster().cloned() else {
            return;
        };
        let me = ctx.id();
        let Some(my_pos) = roster.position(me) else {
            return;
        };
        let mut contributors = 0u64;
        let mut shares = Vec::new();
        for (&sender, share) in &self.received_shares {
            if let Some(bit) = roster.mask_bit(sender) {
                contributors |= bit;
                shares.push(share.clone());
            }
        }
        let assembly = if shares.is_empty() {
            vec![Fp::ZERO; self.components()]
        } else {
            assemble(&shares)
        };
        self.fsums.insert(my_pos, (assembly.clone(), contributors));
        ctx.broadcast(IcpdaMsg::FSum {
            cluster: roster.head(),
            values: assembly.iter().map(|f| f.to_u64()).collect(),
            contributors,
        });
        if self.config.reliability.cluster_arq {
            // Losing an assembly broadcast costs the cluster a solve input;
            // repeat it on the budget (receivers store by position, so
            // duplicates are idempotent).
            let s = self.config.schedule;
            self.fsum_retry = RetryState::new();
            if let Some(repeat) = self.fsum_retry.next_delay(
                &self.config.reliability,
                s.upstream_repeat_after,
                s.upstream_repeat_jitter,
                ctx.rng(),
            ) {
                ctx.set_timer(repeat, TIMER_FSUM_REPEAT);
            }
        }
    }

    fn handle_fsum_repeat(&mut self, ctx: &mut Context<'_, IcpdaMsg>) {
        if self.config.privacy == PrivacyMode::Off {
            return;
        }
        let Some(roster) = self.participating_roster().cloned() else {
            return;
        };
        let Some(my_pos) = roster.position(ctx.id()) else {
            return;
        };
        let Some((assembly, contributors)) = self.fsums.get(&my_pos).cloned() else {
            return;
        };
        ctx.metrics().bump("icpda_rel_timeout");
        ctx.broadcast(IcpdaMsg::FSum {
            cluster: roster.head(),
            values: assembly.iter().map(|f| f.to_u64()).collect(),
            contributors,
        });
        ctx.metrics().bump("icpda_rel_retransmit");
        let rel = self.config.reliability;
        let s = self.config.schedule;
        if let Some(repeat) = self.fsum_retry.next_delay(
            &rel,
            s.upstream_repeat_after,
            s.upstream_repeat_jitter,
            ctx.rng(),
        ) {
            ctx.set_timer(repeat, TIMER_FSUM_REPEAT);
        } else {
            ctx.metrics().bump("icpda_rel_exhausted");
        }
    }

    fn handle_fsum_repair_timer(&mut self, ctx: &mut Context<'_, IcpdaMsg>) {
        if self.config.privacy == PrivacyMode::Off {
            return;
        }
        let Some(roster) = self.participating_roster().cloned() else {
            return;
        };
        let mut missing = 0u64;
        for pos in 0..roster.len() {
            if !self.fsums.contains_key(&pos) {
                missing |= 1 << pos;
            }
        }
        if missing != 0 {
            ctx.metrics()
                .add("icpda_fsums_missing", missing.count_ones().into());
            ctx.broadcast(IcpdaMsg::FsumNack {
                cluster: roster.head(),
                missing,
            });
        }
    }

    fn handle_fsum_nack(
        &mut self,
        ctx: &mut Context<'_, IcpdaMsg>,
        from: NodeId,
        cluster: NodeId,
        missing: u64,
    ) {
        let Some(roster) = self.roster.as_ref().cloned() else {
            return;
        };
        if roster.head() != cluster || !roster.contains(from) {
            return;
        }
        let me = ctx.id();
        // The head echoes assemblies the requester missed: members can be
        // two hops apart, so the original broadcast may be physically
        // unreachable, but the head hears everyone.
        if me == cluster {
            for pos in 0..roster.len() {
                if missing & (1 << pos) != 0 {
                    if let Some((assembly, contributors)) = self.fsums.get(&pos).cloned() {
                        ctx.metrics().bump("icpda_fsum_echoed");
                        ctx.send(
                            from,
                            IcpdaMsg::FsumEcho {
                                cluster,
                                position: pos as u8,
                                values: assembly.iter().map(|f| f.to_u64()).collect(),
                                contributors,
                            },
                        );
                    }
                }
            }
        }
        let Some(my_pos) = roster.position(me) else {
            return;
        };
        if missing & (1 << my_pos) == 0 {
            return;
        }
        if let Some((assembly, contributors)) = self.fsums.get(&my_pos).cloned() {
            ctx.metrics().bump("icpda_fsum_resent");
            ctx.broadcast(IcpdaMsg::FSum {
                cluster,
                values: assembly.iter().map(|f| f.to_u64()).collect(),
                contributors,
            });
        }
    }

    fn handle_fsum_echo(
        &mut self,
        ctx: &mut Context<'_, IcpdaMsg>,
        from: NodeId,
        cluster: NodeId,
        position: usize,
        values: &[u64],
        contributors: u64,
    ) {
        let Some(roster) = self.roster.as_ref() else {
            return;
        };
        // Echoes are only accepted from the head: it is the one node
        // guaranteed to be in range of every member, and restricting the
        // echo source keeps the trust surface a single node (consistent
        // with the paper's non-colluding attacker model).
        if roster.head() != cluster || from != cluster {
            return;
        }
        if position >= roster.len() || values.len() != self.components() {
            return;
        }
        let assembly: ShareVector = values.iter().map(|&v| Fp::new(v)).collect();
        match self.fsums.get(&position) {
            None => {
                self.fsums.insert(position, (assembly, contributors));
                ctx.metrics().bump("icpda_fsum_echo_used");
            }
            Some((existing, existing_mask)) => {
                if *existing != assembly || *existing_mask != contributors {
                    // The direct broadcast is authoritative; a conflicting
                    // echo means someone is lying.
                    ctx.metrics().bump("icpda_echo_conflict");
                }
            }
        }
    }

    fn handle_fsum(
        &mut self,
        ctx: &mut Context<'_, IcpdaMsg>,
        from: NodeId,
        cluster: NodeId,
        values: &[u64],
        contributors: u64,
    ) {
        let Some(roster) = self.roster.as_ref() else {
            return;
        };
        if roster.head() != cluster || values.len() != self.components() {
            return;
        }
        let Some(pos) = roster.position(from) else {
            return;
        };
        let _ = ctx;
        self.fsums.insert(
            pos,
            (values.iter().map(|&v| Fp::new(v)).collect(), contributors),
        );
    }

    fn handle_solve_timer(&mut self, ctx: &mut Context<'_, IcpdaMsg>) {
        let Some(roster) = self.participating_roster().cloned() else {
            return;
        };
        let is_head = self.role == Role::Head;
        if self.config.privacy == PrivacyMode::Off {
            // Plain clustering: only the head holds the readings, so only
            // the head can produce (or audit) the cluster aggregate —
            // members get no verification material. That asymmetry is the
            // synergy ablation A17 measures.
            if is_head && !self.raw_readings.is_empty() {
                let mut totals = vec![Fp::ZERO; self.components()];
                for raw in self.raw_readings.values() {
                    for (t, &c) in totals.iter_mut().zip(raw) {
                        *t += c;
                    }
                }
                let aggregate = CachedAggregate {
                    totals,
                    participants: self.raw_readings.len() as u32,
                };
                self.monitor.record_cluster(ctx.id(), aggregate.clone());
                self.cluster_aggregate = Some(aggregate);
                ctx.metrics().bump("icpda_head_solved");
            }
            return;
        }
        let m = roster.len();
        if self.config.crash_recovery {
            self.solve_with_survivors(ctx, &roster);
            return;
        }
        if self.fsums.len() != m {
            ctx.metrics().bump(if is_head {
                "icpda_head_failed_missing_fsum"
            } else {
                "icpda_cluster_failed_missing_fsum"
            });
            return;
        }
        // Positions are keyed 0..m: the length check above plus the
        // position bound on insert guarantee every key is present, but
        // `.get()` keeps the path panic-free regardless.
        let mask = match self.fsums.get(&0) {
            Some(&(_, mask)) => mask,
            None => 0,
        };
        if (1..m).any(|j| self.fsums.get(&j).is_none_or(|f| f.1 != mask)) {
            ctx.metrics().bump(if is_head {
                "icpda_head_failed_mask_mismatch"
            } else {
                "icpda_cluster_failed_mask_mismatch"
            });
            return;
        }
        if mask == 0 {
            ctx.metrics().bump("icpda_cluster_failed_empty");
            return;
        }
        let assemblies: Vec<ShareVector> = self.fsums.values().map(|f| f.0.clone()).collect();
        let Some(sum) = recover_sum(&assemblies) else {
            ctx.metrics().bump("icpda_cluster_failed_solve");
            return;
        };
        let aggregate = CachedAggregate {
            totals: sum,
            participants: mask.count_ones(),
        };
        // Every member records the aggregate: the head to report it, the
        // members to audit the head (transparent aggregation).
        self.monitor
            .record_cluster(roster.head(), aggregate.clone());
        self.cluster_aggregate = Some(aggregate);
        ctx.metrics().bump(if is_head {
            "icpda_head_solved"
        } else {
            "icpda_cluster_solved"
        });
    }

    /// Crash-recovery solve: instead of demanding all `m` assemblies
    /// under one consistent contributor mask, group whatever assemblies
    /// arrived by their mask and interpolate the largest consistent
    /// group — threshold sharing makes any `min_cluster_size` positions
    /// sufficient, so clusters solve with the survivors' shares after a
    /// member (or the head) dies mid-exchange.
    fn solve_with_survivors(&mut self, ctx: &mut Context<'_, IcpdaMsg>, roster: &Roster) {
        let is_head = self.role == Role::Head;
        let m = roster.len();
        let mut groups: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        for (&pos, &(_, mask)) in &self.fsums {
            groups.entry(mask).or_default().push(pos);
        }
        let best = groups
            .iter()
            .max_by_key(|(mask, positions)| {
                (
                    positions.len(),
                    mask.count_ones(),
                    std::cmp::Reverse(**mask),
                )
            })
            .map(|(&mask, positions)| (mask, positions.clone()));
        let Some((mask, positions)) = best else {
            ctx.metrics().bump(if is_head {
                "icpda_head_failed_missing_fsum"
            } else {
                "icpda_cluster_failed_missing_fsum"
            });
            return;
        };
        if mask == 0 {
            ctx.metrics().bump("icpda_cluster_failed_empty");
            return;
        }
        let threshold = self.config.min_cluster_size.min(m);
        if positions.len() < threshold {
            ctx.metrics().bump(if is_head {
                "icpda_head_failed_missing_fsum"
            } else {
                "icpda_cluster_failed_missing_fsum"
            });
            return;
        }
        let points: Vec<(usize, ShareVector)> = positions
            .iter()
            .filter_map(|&p| self.fsums.get(&p).map(|(a, _)| (p, a.clone())))
            .collect();
        let Some(sum) = recover_sum_at(&points) else {
            ctx.metrics().bump("icpda_cluster_failed_solve");
            return;
        };
        if positions.len() < m {
            ctx.metrics().bump("icpda_solved_degraded");
        }
        let aggregate = CachedAggregate {
            totals: sum,
            participants: mask.count_ones(),
        };
        self.monitor
            .record_cluster(roster.head(), aggregate.clone());
        self.cluster_aggregate = Some(aggregate);
        ctx.metrics().bump(if is_head {
            "icpda_head_solved"
        } else {
            "icpda_cluster_solved"
        });
    }

    fn handle_upstream_timer(&mut self, ctx: &mut Context<'_, IcpdaMsg>) {
        if self.is_base_station {
            return;
        }
        let me = ctx.id();
        let mut totals = self.upstream_acc.clone();
        let mut participants = self.upstream_participants;
        let mut inputs = self.absorbed_inputs.clone();
        if self.role == Role::Head {
            if let Some(agg) = &self.cluster_aggregate {
                for (t, &c) in totals.iter_mut().zip(&agg.totals) {
                    *t += c;
                }
                participants += agg.participants;
                inputs.push(InputClaim {
                    source: MergedRef::Cluster { head: me },
                    totals: agg.totals_u64(),
                    participants: agg.participants,
                });
            }
        }
        if self.config.crash_recovery {
            self.merge_recovery_inputs(ctx, &mut totals, &mut participants, &mut inputs);
        }
        self.upstream_sent = true;
        if let (Some(target), Some(parent)) = (self.slander, self.flood_parent) {
            ctx.metrics().bump("icpda_slander_sent");
            ctx.send(
                parent,
                IcpdaMsg::Alarm {
                    accuser: ctx.id(),
                    accused: target,
                },
            );
        }
        if participants == 0 && inputs.is_empty() {
            ctx.metrics().bump("icpda_upstream_skipped");
            return;
        }
        if self.config.integrity == IntegrityMode::Off {
            inputs.clear();
        }
        if let Some(pollution) = self.pollution {
            pollution.apply(&mut totals, &mut participants, &mut inputs);
        } else if let Behavior::PolluteAggregate(pollution) = self.behavior {
            // Byzantine hook (aggregation): same embedding machinery as
            // the legacy per-node attack, driven by the plan instead.
            pollution.apply(&mut totals, &mut participants, &mut inputs);
            ctx.metrics().bump("icpda_adv_polluted");
            ctx.trace_adversary(self.behavior.code());
        }
        let Some(parent) = self.flood_parent else {
            return;
        };
        let msg = SharedPayload::new(IcpdaMsg::Upstream {
            msg_id: u32::from(self.current_round),
            totals: totals.iter().map(|f| f.to_u64()).collect(),
            participants,
            inputs,
        });
        ctx.send_shared(parent, &msg);
        // A single collision at the parent would silently drop a whole
        // subtree, so every report is retransmitted on its retry budget;
        // receivers deduplicate on (sender, msg_id).
        self.pending_upstream = Some(msg);
        self.upstream_target = Some(parent);
        self.upstream_retry = RetryState::new();
        let rel = self.config.reliability;
        let s = self.config.schedule;
        if let Some(repeat) = self.upstream_retry.next_delay(
            &rel,
            s.upstream_repeat_after,
            s.upstream_repeat_jitter,
            ctx.rng(),
        ) {
            ctx.set_timer(repeat, TIMER_UPSTREAM_REPEAT);
        } else {
            // ARQ off: nothing will fire to close the verify span.
            obs_phase_end(ctx, PHASE_ASCENT_VERIFY);
        }
        if self.config.crash_recovery {
            // Parent-liveness deadline: two upstream slots past our own
            // send, the parent's slot has certainly passed — a parent
            // that transmitted nothing in that window is presumed dead
            // and the report is rerouted. Level-1 nodes report straight
            // to the base station (node 0 never faults), so they skip it.
            if self.level.is_some_and(|l| l > 1) {
                let slot = self.config.schedule.upstream_slot();
                ctx.set_timer(
                    slot * 2 + self.config.schedule.parent_check_slack,
                    TIMER_PARENT_CHECK,
                );
            }
        }
        ctx.metrics().bump("icpda_upstream_sent");
    }

    /// Crash-recovery additions to this node's own upstream report: a
    /// member takes over reporting its cluster's aggregate when the head
    /// went silent, and a node whose cluster never materialised reports
    /// its own reading directly (privacy degrades to the link-encrypted
    /// hop for that reading, but it is not lost).
    fn merge_recovery_inputs(
        &mut self,
        ctx: &mut Context<'_, IcpdaMsg>,
        totals: &mut [Fp],
        participants: &mut u32,
        inputs: &mut Vec<InputClaim>,
    ) {
        let me = ctx.id();
        // Takeover: the head's own assembly never arrived, so the head is
        // presumed dead (or deaf); the surviving member holding the
        // smallest assembled roster position reports the cluster
        // aggregate in its place. Should the head in fact be alive, the
        // duplicate claim is subtracted at the base station.
        if let (Role::Member(head), Some(agg), Some(roster)) = (
            self.role,
            self.cluster_aggregate.clone(),
            self.roster.as_ref(),
        ) {
            let head_pos = roster.position(head);
            let head_silent = head_pos.is_none_or(|hp| !self.fsums.contains_key(&hp));
            let min_present = self.fsums.keys().copied().find(|p| Some(*p) != head_pos);
            let my_pos = roster.position(me);
            if head_silent && my_pos.is_some() && min_present == my_pos {
                ctx.metrics().bump("icpda_takeover_report");
                for (t, &c) in totals.iter_mut().zip(&agg.totals) {
                    *t += c;
                }
                *participants += agg.participants;
                inputs.push(InputClaim {
                    source: MergedRef::Cluster { head },
                    totals: agg.totals_u64(),
                    participants: agg.participants,
                });
            }
        }
        // Orphan / failed-cluster direct report: the reading would
        // otherwise be lost with the cluster.
        if !self.shared
            && self.cluster_aggregate.is_none()
            && self.level.is_some()
            && !self.excluded
        {
            ctx.metrics().bump("icpda_direct_report");
            let contribution = self.config.function.encode(self.reading);
            for (t, &c) in totals.iter_mut().zip(&contribution) {
                *t += Fp::new(c);
            }
            *participants += 1;
            inputs.push(InputClaim {
                source: MergedRef::Cluster { head: me },
                totals: contribution,
                participants: 1,
            });
        }
    }

    /// Fires two upstream slots after our own report went out: if the
    /// parent has not transmitted anything since, it is presumed dead and
    /// the report is re-sent to another lower-level neighbour (which
    /// forwards it immediately via the late-forward path).
    fn handle_parent_check(&mut self, ctx: &mut Context<'_, IcpdaMsg>) {
        if !self.config.crash_recovery || self.parent_forwarded || !self.upstream_sent {
            return;
        }
        let Some(msg) = self.pending_upstream.as_ref() else {
            return;
        };
        let Some(my_level) = self.level.filter(|&l| l > 1) else {
            return;
        };
        let Some(parent) = self.flood_parent else {
            return;
        };
        let alternate = self
            .neighbor_levels
            .iter()
            .filter(|&(&n, &l)| n != parent && l < my_level)
            .min_by_key(|&(&n, &l)| (l, n))
            .map(|(&n, _)| n);
        match alternate {
            Some(alt) => {
                ctx.metrics().bump("icpda_parent_rerouted");
                self.upstream_target = Some(alt);
                ctx.send_shared(alt, msg);
            }
            None => ctx.metrics().bump("icpda_reroute_no_alternate"),
        }
    }

    /// A report that arrives after this node already transmitted its own
    /// cannot be merged any more — under crash recovery it is wrapped
    /// and forwarded as a fresh report instead of being dropped, which is
    /// what makes rerouting around a dead parent deliver (the alternate
    /// parent has always sent by the time the rerouted copy arrives:
    /// lower levels transmit in later slots).
    fn late_forward(
        &mut self,
        ctx: &mut Context<'_, IcpdaMsg>,
        from: NodeId,
        msg_id: u32,
        totals_raw: &[u64],
        participants: u32,
    ) {
        let Some(target) = self.upstream_target.or(self.flood_parent) else {
            return;
        };
        self.late_forward_seq += 1;
        let forward_id = u32::from(self.current_round) | (self.late_forward_seq << 16);
        let mut inputs = vec![InputClaim {
            source: MergedRef::Relay {
                sender: from,
                msg_id,
            },
            totals: totals_raw.to_vec(),
            participants,
        }];
        if self.config.integrity == IntegrityMode::Off {
            inputs.clear();
        }
        ctx.metrics().bump("icpda_late_forwarded");
        ctx.send(
            target,
            IcpdaMsg::Upstream {
                msg_id: forward_id,
                totals: totals_raw.to_vec(),
                participants,
                inputs,
            },
        );
    }

    /// Shared audit path for received and overheard upstream reports.
    fn audit_upstream(
        &mut self,
        ctx: &mut Context<'_, IcpdaMsg>,
        sender: NodeId,
        msg_id: u32,
        totals: &[Fp],
        participants: u32,
        inputs: &[InputClaim],
    ) {
        if self.config.integrity == IntegrityMode::Off {
            return;
        }
        let outcome = self
            .monitor
            .check(totals, participants, inputs, self.config.threshold);
        match outcome {
            CheckOutcome::Violation(kind) => {
                ctx.metrics().bump(match kind {
                    ViolationKind::InconsistentSum => "icpda_violation_inconsistent",
                    ViolationKind::ForgedInput => "icpda_violation_forged_input",
                });
                if self.alarms_raised.insert(sender) {
                    ctx.metrics().bump("icpda_alarm_raised");
                    let alarm = IcpdaMsg::Alarm {
                        accuser: ctx.id(),
                        accused: sender,
                    };
                    if self.is_base_station {
                        self.bs_alarms.push((ctx.id(), sender));
                    } else if let Some(parent) = self.flood_parent {
                        ctx.send(parent, alarm);
                    }
                }
            }
            CheckOutcome::Clean => ctx.metrics().bump("icpda_audit_clean"),
            CheckOutcome::PartialClean => ctx.metrics().bump("icpda_audit_partial"),
            CheckOutcome::Unknown => ctx.metrics().bump("icpda_audit_unknown"),
        }
        // Cache after checking (a sender's own message must not vouch for
        // itself).
        self.monitor.record_upstream(
            sender,
            msg_id,
            CachedAggregate {
                totals: totals.to_vec(),
                participants,
            },
        );
    }

    fn handle_upstream(
        &mut self,
        ctx: &mut Context<'_, IcpdaMsg>,
        from: NodeId,
        msg_id: u32,
        totals_raw: &[u64],
        participants: u32,
        inputs: &[InputClaim],
    ) {
        // Any upstream report marks the start of this node's ascent/
        // verification window (intermediate nodes absorb children before
        // their own slot; the base station only ever receives).
        obs_phase_start(ctx, PHASE_ASCENT_VERIFY);
        if totals_raw.len() != self.components() {
            ctx.metrics().bump("icpda_upstream_malformed");
            return;
        }
        let totals: Vec<Fp> = totals_raw.iter().map(|&v| Fp::new(v)).collect();
        if !self.seen_upstream.insert((from, msg_id)) {
            ctx.metrics().bump("icpda_upstream_duplicate");
            ctx.metrics().bump("icpda_rel_duplicate");
            return;
        }
        // Byzantine hook (ascent): a SelectiveForward node black-holes
        // its children's reports — absorbed into nothing, forwarded
        // nowhere. The base station itself never drops (node 0 is
        // honest by construction).
        if !self.is_base_station && self.behavior == Behavior::SelectiveForward {
            ctx.metrics().bump("icpda_adv_dropped_upstream");
            ctx.trace_adversary(self.behavior.code());
            return;
        }
        // With the integrity layer on, every honest report carries an
        // audit trail (a head lists its cluster, a relay its inputs).
        // A non-empty report without one is a protocol violation —
        // refuse it and raise an alarm instead of absorbing blind data.
        if self.config.integrity == IntegrityMode::On
            && inputs.is_empty()
            && (participants > 0 || totals.iter().any(|t| !t.is_zero()))
        {
            ctx.metrics().bump("icpda_upstream_unaudited");
            if self.alarms_raised.insert(from) {
                let alarm = IcpdaMsg::Alarm {
                    accuser: ctx.id(),
                    accused: from,
                };
                if self.is_base_station {
                    self.bs_alarms.push((ctx.id(), from));
                } else if let Some(parent) = self.flood_parent {
                    ctx.send(parent, alarm);
                }
            }
            return;
        }
        self.audit_upstream(ctx, from, msg_id, &totals, participants, inputs);
        if self.is_base_station {
            let mut totals = totals;
            let mut participants = participants;
            if self.config.crash_recovery {
                // Recovery can duplicate inputs (a takeover racing a slow
                // head, a reroute whose parent was alive after all). Claim
                // sources are unique per round, so a source seen twice is
                // subtracted once before absorbing.
                for claim in inputs {
                    if !self.bs_merged_refs.insert(claim.source) {
                        ctx.metrics().bump("icpda_bs_dedup");
                        for (t, &c) in totals.iter_mut().zip(&claim.totals) {
                            *t -= Fp::new(c);
                        }
                        participants = participants.saturating_sub(claim.participants);
                    }
                }
            }
            for (acc, &t) in self.upstream_acc.iter_mut().zip(&totals) {
                *acc += t;
            }
            self.upstream_participants += participants;
            self.bs_last_update = Some(ctx.now());
            return;
        }
        if self.upstream_sent {
            self.late_upstream += 1;
            ctx.metrics().bump("icpda_upstream_late");
            if self.config.crash_recovery {
                self.late_forward(ctx, from, msg_id, totals_raw, participants);
            }
            return;
        }
        for (acc, &t) in self.upstream_acc.iter_mut().zip(&totals) {
            *acc += t;
        }
        self.upstream_participants += participants;
        self.absorbed_inputs.push(InputClaim {
            source: MergedRef::Relay {
                sender: from,
                msg_id,
            },
            totals: totals_raw.to_vec(),
            participants,
        });
    }

    fn handle_alarm(&mut self, ctx: &mut Context<'_, IcpdaMsg>, accuser: NodeId, accused: NodeId) {
        if self.is_base_station {
            if !self.bs_alarms.contains(&(accuser, accused)) {
                self.bs_alarms.push((accuser, accused));
            }
            return;
        }
        if self.alarms_forwarded.insert((accuser, accused)) {
            if let Some(parent) = self.flood_parent {
                ctx.send(parent, IcpdaMsg::Alarm { accuser, accused });
            }
        }
    }

    /// Liveness bookkeeping (crash recovery): any frame from our head
    /// proves it alive; any frame from our flood parent after our own
    /// upstream send proves the parent is still there to forward.
    fn note_frame_from(&mut self, from: NodeId) {
        if let Role::Member(head) = self.role {
            if from == head {
                self.head_alive_seen = true;
            }
        }
        if self.upstream_sent && self.flood_parent == Some(from) {
            self.parent_forwarded = true;
        }
    }

    fn handle_beacon_timer(&mut self, ctx: &mut Context<'_, IcpdaMsg>) {
        if !self.config.crash_recovery || self.role != Role::Head || self.has_resigned {
            return;
        }
        ctx.metrics().bump("icpda_beacon_sent");
        ctx.broadcast(IcpdaMsg::HeadBeacon { head: ctx.id() });
    }

    fn handle_decision_timer(&mut self, ctx: &mut Context<'_, IcpdaMsg>) {
        let totals: Vec<u64> = self.upstream_acc.iter().map(|f| f.to_u64()).collect();
        let value = self.config.function.decode(&totals);
        let accepted = self.bs_alarms.is_empty();
        ctx.metrics().bump(if accepted {
            "icpda_round_accepted"
        } else {
            "icpda_round_rejected"
        });
        self.decisions.push(BsDecision {
            totals,
            participants: self.upstream_participants,
            value,
            alarms: std::mem::take(&mut self.bs_alarms),
            accepted,
        });
        // More rounds? Reuse the formed clusters: flood a round marker
        // and schedule the next decision.
        if self.decisions.len() < usize::from(self.config.rounds) {
            let round = self.current_round + 1;
            self.begin_round(ctx, round);
            ctx.broadcast(IcpdaMsg::NewRound { round });
            ctx.set_timer(self.config.schedule.decision_time(), TIMER_DECISION);
        }
    }
}

impl Application for IcpdaNode {
    type Message = IcpdaMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, IcpdaMsg>) {
        if self.is_base_station {
            ctx.broadcast(IcpdaMsg::Query { level: 0 });
            ctx.set_timer(self.config.schedule.decision_time(), TIMER_DECISION);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, IcpdaMsg>, from: NodeId, msg: &IcpdaMsg) {
        if self.config.crash_recovery {
            self.note_frame_from(from);
        }
        match msg {
            IcpdaMsg::Query { level } => self.handle_query(ctx, from, *level),
            IcpdaMsg::HeadAnnounce => {
                if !self.is_base_station {
                    // Duplicate-safe: a retransmitted or channel-duplicated
                    // announce must not skew the head-pick distribution.
                    if self.heads_heard.contains(&from) {
                        ctx.metrics().bump("icpda_rel_duplicate");
                    } else {
                        self.heads_heard.push(from);
                    }
                }
            }
            IcpdaMsg::Resign { head } => {
                // Only the head itself may resign its cluster. Duplicate
                // deliveries must not re-schedule (or re-draw) anything.
                if from == *head {
                    if self.resigned_heads.insert(*head) {
                        if self.role == Role::Member(*head) {
                            self.schedule_rejoin(ctx);
                        }
                    } else {
                        ctx.metrics().bump("icpda_rel_duplicate");
                    }
                }
            }
            IcpdaMsg::Join { head } => {
                if *head == ctx.id()
                    && self.role == Role::Head
                    && !self.has_resigned
                    && self.roster.is_none()
                {
                    // Duplicate-safe: one roster slot per joiner no matter
                    // how many copies of the Join arrive.
                    if self.joiners.contains(&from) {
                        ctx.metrics().bump("icpda_rel_duplicate");
                    } else {
                        self.joiners.push(from);
                    }
                }
            }
            IcpdaMsg::ClusterInfo {
                head,
                members,
                stagger_ms,
            } => {
                self.handle_cluster_info(ctx, from, *head, members, *stagger_ms);
            }
            IcpdaMsg::Share {
                cluster,
                origin,
                sealed,
            } => self.handle_share(ctx, *origin, *cluster, sealed),
            IcpdaMsg::ShareRelay {
                cluster,
                origin,
                to,
                sealed,
            } => self.handle_share_relay(ctx, *cluster, *origin, *to, sealed.clone()),
            IcpdaMsg::RawReading { cluster, sealed } => {
                self.handle_raw_reading(ctx, from, *cluster, sealed);
            }
            IcpdaMsg::ShareNack {
                cluster,
                requester,
                missing,
            } => {
                let _ = from;
                self.handle_share_nack(ctx, *cluster, *requester, missing);
            }
            IcpdaMsg::FSum {
                cluster,
                values,
                contributors,
            } => self.handle_fsum(ctx, from, *cluster, values, *contributors),
            IcpdaMsg::FsumNack { cluster, missing } => {
                self.handle_fsum_nack(ctx, from, *cluster, *missing);
            }
            IcpdaMsg::FsumEcho {
                cluster,
                position,
                values,
                contributors,
            } => self.handle_fsum_echo(
                ctx,
                from,
                *cluster,
                usize::from(*position),
                values,
                *contributors,
            ),
            IcpdaMsg::Upstream {
                msg_id,
                totals,
                participants,
                inputs,
            } => self.handle_upstream(ctx, from, *msg_id, totals, *participants, inputs),
            IcpdaMsg::NewRound { round } => self.handle_new_round(ctx, *round),
            IcpdaMsg::HeadBeacon { head } => {
                // Pure liveness signal — `note_frame_from` above already
                // recorded it; re-check here so a beacon overheard from a
                // head we joined but whose roster we missed still counts.
                if from == *head && self.role == Role::Member(*head) {
                    self.head_alive_seen = true;
                }
            }
            IcpdaMsg::Alarm { accuser, accused } => self.handle_alarm(ctx, *accuser, *accused),
        }
    }

    fn on_overhear(&mut self, ctx: &mut Context<'_, IcpdaMsg>, frame: &Frame<IcpdaMsg>) {
        if self.config.crash_recovery {
            self.note_frame_from(frame.src);
        }
        // Promiscuous monitoring: audit unicast upstream reports addressed
        // to other nodes.
        if let IcpdaMsg::Upstream {
            msg_id,
            totals,
            participants,
            inputs,
        } = &*frame.payload
        {
            if totals.len() == self.components() {
                let totals: Vec<Fp> = totals.iter().map(|&v| Fp::new(v)).collect();
                self.audit_upstream(ctx, frame.src, *msg_id, &totals, *participants, inputs);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, IcpdaMsg>, token: TimerToken) {
        match token {
            TIMER_ELECT => {
                // Election marks the flood settling into formation.
                obs_phase_end(ctx, PHASE_QUERY_FLOOD);
                obs_phase_start(ctx, PHASE_CLUSTER_FORMATION);
                self.handle_elect(ctx);
            }
            TIMER_JOIN => self.handle_join_timer(ctx),
            TIMER_ROSTER => {
                // Broadcasting the roster fixes the head's cluster.
                self.handle_roster_timer(ctx);
                obs_phase_end(ctx, PHASE_CLUSTER_FORMATION);
            }
            TIMER_SHARES => {
                obs_phase_start(ctx, PHASE_SHARE_EXCHANGE);
                self.handle_shares_timer(ctx);
            }
            TIMER_SHARE_DRAIN => self.drain_one_share(ctx),
            TIMER_REPAIR | TIMER_REPAIR2 => self.handle_repair_timer(ctx),
            TIMER_FLOOD_RELAY => {
                if let Some(msg) = self.pending_flood.take() {
                    ctx.broadcast_shared(&msg);
                }
            }
            TIMER_FSUM => {
                obs_phase_end(ctx, PHASE_SHARE_EXCHANGE);
                obs_phase_start(ctx, PHASE_AGGREGATION);
                self.handle_fsum_timer(ctx);
            }
            TIMER_FSUM_REPAIR => self.handle_fsum_repair_timer(ctx),
            TIMER_ROSTER_REPEAT => self.handle_roster_repeat(ctx),
            TIMER_RESIGN => self.handle_resign_timer(ctx),
            TIMER_REJOIN => {
                self.handle_rejoin_timer(ctx);
                // A resigned head's formation (still open) and a
                // crash-recovery episode both resolve here; either close
                // is a no-op when that span is not open.
                obs_phase_end(ctx, PHASE_CLUSTER_FORMATION);
                obs_phase_end(ctx, PHASE_CRASH_RECOVERY);
            }
            TIMER_SOLVE => {
                obs_phase_start(ctx, PHASE_AGGREGATION);
                self.handle_solve_timer(ctx);
                obs_phase_end(ctx, PHASE_AGGREGATION);
            }
            TIMER_UPSTREAM => {
                obs_phase_start(ctx, PHASE_ASCENT_VERIFY);
                self.handle_upstream_timer(ctx);
            }
            TIMER_UPSTREAM_REPEAT => {
                let resent = if let (Some(msg), Some(parent)) =
                    (self.pending_upstream.as_ref(), self.flood_parent)
                {
                    ctx.metrics().bump("icpda_rel_timeout");
                    ctx.send_shared(parent, msg);
                    ctx.metrics().bump("icpda_rel_retransmit");
                    true
                } else {
                    false
                };
                let mut next = None;
                if resent {
                    let rel = self.config.reliability;
                    let s = self.config.schedule;
                    next = self.upstream_retry.next_delay(
                        &rel,
                        s.upstream_repeat_after,
                        s.upstream_repeat_jitter,
                        ctx.rng(),
                    );
                }
                if let Some(repeat) = next {
                    ctx.set_timer(repeat, TIMER_UPSTREAM_REPEAT);
                } else {
                    if resent {
                        ctx.metrics().bump("icpda_rel_exhausted");
                    }
                    obs_phase_end(ctx, PHASE_ASCENT_VERIFY);
                }
            }
            TIMER_DECISION => {
                // The base station's verification window closes with the
                // round's verdict.
                self.handle_decision_timer(ctx);
                obs_phase_end(ctx, PHASE_ASCENT_VERIFY);
            }
            TIMER_HEAD_CHECK => self.handle_head_check(ctx),
            TIMER_PARENT_CHECK => self.handle_parent_check(ctx),
            TIMER_BEACON => self.handle_beacon_timer(ctx),
            TIMER_ANNOUNCE_REPEAT => self.handle_announce_repeat(ctx),
            TIMER_JOIN_REPEAT => self.handle_join_repeat(ctx),
            TIMER_SHARES_REPEAT => self.handle_shares_repeat(ctx),
            TIMER_FSUM_REPEAT => self.handle_fsum_repeat(ctx),
            _ => {}
        }
    }
}
