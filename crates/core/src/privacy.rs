//! Offline privacy evaluation: who could the eavesdropper expose?
//!
//! The privacy guarantee of the cluster scheme is algebraic: a member's
//! reading is recoverable only by an adversary that obtains *all* the
//! member's intra-cluster share traffic — i.e. can read every link
//! between the member and each other member of its cluster (by key
//! compromise, with probability `p_x` per link, or by having compromised
//! the counterpart outright — `m − 1` colluding members being the
//! worst case the paper defers to future work). Given the rosters that
//! actually formed during a run and a [`LinkAdversary`], this module
//! computes exactly that predicate per node, which is the Monte-Carlo
//! side of the paper's `P_disclose` figure.

use crate::cluster::Roster;
use std::collections::BTreeSet;
use wsn_crypto::key::RandomPredistribution;
use wsn_crypto::LinkAdversary;
use wsn_sim::NodeId;

/// Result of the disclosure analysis over one protocol run.
#[derive(Clone, Debug, Default)]
pub struct DisclosureReport {
    /// Honest nodes that transmitted shares (the privacy-relevant set).
    pub sharing_nodes: usize,
    /// Honest sharing nodes whose reading the adversary can reconstruct.
    pub disclosed: Vec<NodeId>,
}

impl DisclosureReport {
    /// The paper's `P_disclose`: the fraction of sharing nodes exposed.
    #[must_use]
    pub fn probability(&self) -> f64 {
        if self.sharing_nodes == 0 {
            0.0
        } else {
            self.disclosed.len() as f64 / self.sharing_nodes as f64
        }
    }
}

/// Evaluates which sharing nodes the adversary can expose.
///
/// `rosters` pairs each node that transmitted shares with its cluster
/// roster (see `IcpdaOutcome::rosters`). Nodes the adversary has fully
/// compromised are excluded — their data is known trivially, not via a
/// protocol weakness.
#[must_use]
pub fn evaluate_disclosure(
    rosters: &[(NodeId, Roster)],
    adversary: &LinkAdversary,
) -> DisclosureReport {
    let mut report = DisclosureReport::default();
    for (node, roster) in rosters {
        if adversary.node_is_compromised(*node) {
            continue;
        }
        report.sharing_nodes += 1;
        let exposed = roster
            .members()
            .iter()
            .filter(|&&m| m != *node)
            .all(|&m| adversary.can_read(*node, m));
        if exposed {
            report.disclosed.push(*node);
        }
    }
    report
}

/// Evaluates disclosure under the Eschenauer–Gligor random-key-
/// predistribution scheme with a set of physically `captured` nodes.
///
/// A link `(i, j)` is readable by the adversary iff an endpoint is
/// captured, or the two endpoints' agreed pool key sits in some captured
/// node's ring. Endpoints that share no pool key are assumed to
/// establish a path key, secure unless an endpoint is captured (the
/// scheme's standard extension). A member is exposed iff *all* links to
/// its cluster peers are readable — the same algebraic rule as
/// [`evaluate_disclosure`], with the key graph in place of the i.i.d.
/// link coin.
#[must_use]
pub fn evaluate_disclosure_with_keys(
    rosters: &[(NodeId, Roster)],
    keys: &RandomPredistribution,
    captured: &BTreeSet<NodeId>,
) -> DisclosureReport {
    // Union of captured rings, for O(1) key lookups.
    let captured_keys: BTreeSet<u32> = captured
        .iter()
        .flat_map(|n| keys.ring(*n).iter().copied())
        .collect();
    let link_readable = |a: NodeId, b: NodeId| -> bool {
        if captured.contains(&a) || captured.contains(&b) {
            return true;
        }
        match keys.shared_pool_key(a, b) {
            Some(k) => captured_keys.contains(&k),
            None => false, // path key: secure absent endpoint capture
        }
    };
    let mut report = DisclosureReport::default();
    for (node, roster) in rosters {
        if captured.contains(node) {
            continue;
        }
        report.sharing_nodes += 1;
        let exposed = roster
            .members()
            .iter()
            .filter(|&&m| m != *node)
            .all(|&m| link_readable(*node, m));
        if exposed {
            report.disclosed.push(*node);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn roster3() -> Roster {
        Roster::new(n(1), &[n(2), n(3)])
    }

    #[test]
    fn no_adversary_no_disclosure() {
        let rosters = vec![(n(1), roster3()), (n(2), roster3()), (n(3), roster3())];
        let adv = LinkAdversary::new(0.0, 7);
        let rep = evaluate_disclosure(&rosters, &adv);
        assert_eq!(rep.sharing_nodes, 3);
        assert!(rep.disclosed.is_empty());
        assert_eq!(rep.probability(), 0.0);
    }

    #[test]
    fn omniscient_adversary_discloses_everyone() {
        let rosters = vec![(n(1), roster3()), (n(2), roster3())];
        let adv = LinkAdversary::new(1.0, 7);
        let rep = evaluate_disclosure(&rosters, &adv);
        assert_eq!(rep.disclosed.len(), 2);
        assert_eq!(rep.probability(), 1.0);
    }

    #[test]
    fn colluding_rest_of_cluster_discloses_the_victim() {
        let rosters = vec![(n(1), roster3())];
        let mut adv = LinkAdversary::new(0.0, 7);
        adv.compromise_node(n(2));
        adv.compromise_node(n(3));
        let rep = evaluate_disclosure(&rosters, &adv);
        assert_eq!(rep.disclosed, vec![n(1)]);
    }

    #[test]
    fn single_compromised_member_is_not_enough() {
        let rosters = vec![(n(1), roster3())];
        let mut adv = LinkAdversary::new(0.0, 7);
        adv.compromise_node(n(2));
        let rep = evaluate_disclosure(&rosters, &adv);
        assert!(
            rep.disclosed.is_empty(),
            "degree-2 blinding survives one leak"
        );
    }

    #[test]
    fn compromised_nodes_are_excluded_from_the_population() {
        let rosters = vec![(n(2), roster3()), (n(1), roster3())];
        let mut adv = LinkAdversary::new(0.0, 7);
        adv.compromise_node(n(2));
        let rep = evaluate_disclosure(&rosters, &adv);
        assert_eq!(rep.sharing_nodes, 1);
    }

    #[test]
    fn key_scheme_no_captures_no_disclosure() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let keys = RandomPredistribution::generate(10, 100, 20, &mut rng);
        let rosters = vec![(n(1), roster3())];
        let rep = evaluate_disclosure_with_keys(&rosters, &keys, &BTreeSet::new());
        assert!(rep.disclosed.is_empty());
        assert_eq!(rep.sharing_nodes, 1);
    }

    #[test]
    fn key_scheme_capturing_all_peers_discloses() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let keys = RandomPredistribution::generate(10, 100, 20, &mut rng);
        let rosters = vec![(n(1), roster3())];
        let captured: BTreeSet<NodeId> = [n(2), n(3)].into_iter().collect();
        let rep = evaluate_disclosure_with_keys(&rosters, &keys, &captured);
        assert_eq!(rep.disclosed, vec![n(1)]);
    }

    #[test]
    fn key_scheme_third_party_ring_overlap_can_disclose() {
        use rand::SeedableRng;
        // Tiny pool: every ring covers the whole pool, so ANY captured
        // node exposes every encrypted link.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(4);
        let keys = RandomPredistribution::generate(10, 4, 4, &mut rng);
        let rosters = vec![(n(1), roster3())];
        let captured: BTreeSet<NodeId> = [n(9)].into_iter().collect();
        let rep = evaluate_disclosure_with_keys(&rosters, &keys, &captured);
        assert_eq!(rep.disclosed, vec![n(1)], "full-pool rings leak everything");
    }

    #[test]
    fn larger_clusters_are_harder_to_break() {
        // With p_x = 0.5 a 2-member roster leaks ~50% of nodes, a
        // 5-member roster ~6%.
        let small: Vec<(NodeId, Roster)> = (0..400)
            .map(|i| {
                let a = n(2 * i);
                let b = n(2 * i + 1);
                (a, Roster::new(a, &[b]))
            })
            .collect();
        let big: Vec<(NodeId, Roster)> = (0..400)
            .map(|i| {
                let base = 10_000 + 5 * i;
                let ids: Vec<NodeId> = (1..5).map(|k| n(base + k)).collect();
                (n(base), Roster::new(n(base), &ids))
            })
            .collect();
        let adv = LinkAdversary::new(0.5, 3);
        let p_small = evaluate_disclosure(&small, &adv).probability();
        let p_big = evaluate_disclosure(&big, &adv).probability();
        assert!((p_small - 0.5).abs() < 0.1, "p_small {p_small}");
        assert!(p_big < p_small / 3.0, "p_big {p_big}");
    }
}
