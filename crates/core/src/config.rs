//! Protocol configuration.

use agg::AggFunction;
use wsn_sim::SimDuration;

/// How nodes elect themselves cluster head upon hearing the query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum HeadElection {
    /// Every node becomes a head independently with this probability —
    /// the paper's baseline cluster-formation rule (expected cluster
    /// size ≈ 1/p).
    Fixed(f64),
    /// Density-adaptive election: a node that heard `h` query
    /// transmissions elects itself with probability `min(1, k/h)`, so
    /// sparse neighbourhoods produce more heads (better coverage) and
    /// dense ones fewer (less overhead) — the paper family's `k`
    /// adaptation.
    Adaptive {
        /// Target number of heads per neighbourhood.
        k: f64,
    },
}

impl HeadElection {
    /// The election probability for a node that heard the query from
    /// `heard` distinct transmissions.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) on a non-probability `Fixed` value.
    #[must_use]
    pub fn probability(self, heard: usize) -> f64 {
        match self {
            HeadElection::Fixed(p) => {
                debug_assert!((0.0..=1.0).contains(&p));
                p
            }
            HeadElection::Adaptive { k } => {
                if heard == 0 {
                    1.0
                } else {
                    (k / heard as f64).min(1.0)
                }
            }
        }
    }
}

/// Whether the privacy layer (blinded share exchange + transparent
/// assembly) is active. `Off` degrades to plain clustered aggregation:
/// members send their raw (link-encrypted) readings straight to the
/// head. Cheaper — and it silently removes the members' ability to
/// verify the head's cluster claim, which is the synergy the paper
/// argues for (ablation A17 measures it).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PrivacyMode {
    /// Blinded share exchange (the paper's scheme).
    #[default]
    On,
    /// Raw readings to the head (plain clustering baseline).
    Off,
}

/// Whether the integrity layer (transparent aggregation + peer
/// monitoring + alarms) is active. `Off` yields the plain cluster-based
/// private aggregation scheme (the CPDA ablation).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum IntegrityMode {
    /// Monitoring on: upstream reports carry merge references, members
    /// and neighbours verify overheard reports, alarms are routed to the
    /// base station.
    #[default]
    On,
    /// Monitoring off (privacy only) — the CPDA baseline/ablation.
    Off,
}

/// Phase schedule: all windows are measured from the moment the relevant
/// trigger is observed at each node (the query flood reaches nodes at
/// slightly different times; windows are sized to absorb that skew).
#[derive(Clone, Copy, Debug)]
pub struct PhaseSchedule {
    /// From first query receipt to head self-election.
    pub elect_after: SimDuration,
    /// From election to join transmission (non-heads pick a head).
    pub join_after: SimDuration,
    /// From election to the resign decision at under-sized heads.
    pub resign_after: SimDuration,
    /// From a resign notice to the re-join transmission.
    pub rejoin_after: SimDuration,
    /// From election to roster (`ClusterInfo`) broadcast at heads.
    pub roster_after: SimDuration,
    /// From roster receipt to share transmissions.
    pub shares_after: SimDuration,
    /// From roster receipt to the missing-share repair round.
    pub repair_after: SimDuration,
    /// From roster receipt to the blinded-sum (`FSum`) broadcast.
    pub fsum_after: SimDuration,
    /// From roster receipt to the `FSum` repair round (missing-assembly
    /// NACKs and rebroadcasts).
    pub fsum_repair_after: SimDuration,
    /// Upper bound of the random jitter applied to repair NACKs and
    /// rebroadcasts, de-synchronising simultaneous repair traffic inside
    /// a cluster (PR 1's fix for synchronized NACK collisions).
    pub nack_jitter: SimDuration,
    /// From roster receipt to the cluster solve (head and members).
    pub solve_after: SimDuration,
    /// Upper bound of the per-cluster random stagger the head applies to
    /// the whole share exchange, de-synchronising concurrent clusters.
    pub cluster_stagger: SimDuration,
    /// Global start of the upstream (inter-cluster) epoch, measured from
    /// each node's first query receipt.
    pub upstream_start: SimDuration,
    /// Length of the upstream epoch (divided into per-depth slots).
    pub upstream_epoch: SimDuration,
    /// Deepest flood level the upstream schedule accounts for.
    pub max_depth: u16,
    /// Slack after the upstream epoch before the base station decides.
    pub decision_slack: SimDuration,
    /// Base delay before a head's blind roster repeat (the deterministic
    /// part of retry 0; grows per [`crate::ReliabilityConfig`]).
    pub roster_repeat_after: SimDuration,
    /// Upper bound of the uniform jitter added to each roster repeat.
    pub roster_repeat_jitter: SimDuration,
    /// Base delay before an upstream report's blind repeat.
    pub upstream_repeat_after: SimDuration,
    /// Upper bound of the uniform jitter added to each upstream repeat.
    pub upstream_repeat_jitter: SimDuration,
    /// Offset of the second share-repair NACK round after the first.
    pub repair2_offset: SimDuration,
    /// Upper bound of the random jitter applied to query/round flood
    /// relays (the broadcast-storm de-synchroniser).
    pub flood_relay_jitter: SimDuration,
    /// Slack added to two upstream slots when arming the crash-recovery
    /// parent-liveness deadline.
    pub parent_check_slack: SimDuration,
}

impl PhaseSchedule {
    /// Defaults sized for the paper's deployments (≤ 600 nodes,
    /// ≤ ~15 hops): cluster phases finish within ~4 s, upstream epoch
    /// 10 s.
    #[must_use]
    pub fn paper_default() -> Self {
        PhaseSchedule {
            elect_after: SimDuration::from_millis(500),
            join_after: SimDuration::from_millis(400),
            resign_after: SimDuration::from_millis(1100),
            rejoin_after: SimDuration::from_millis(150),
            roster_after: SimDuration::from_millis(2000),
            shares_after: SimDuration::from_millis(200),
            repair_after: SimDuration::from_millis(1600),
            fsum_after: SimDuration::from_millis(2200),
            fsum_repair_after: SimDuration::from_millis(3000),
            nack_jitter: SimDuration::from_millis(150),
            solve_after: SimDuration::from_millis(3800),
            cluster_stagger: SimDuration::from_millis(3000),
            upstream_start: SimDuration::from_millis(12000),
            upstream_epoch: SimDuration::from_secs(10),
            max_depth: 20,
            decision_slack: SimDuration::from_secs(2),
            roster_repeat_after: SimDuration::from_millis(200),
            roster_repeat_jitter: SimDuration::from_millis(200),
            upstream_repeat_after: SimDuration::from_millis(150),
            upstream_repeat_jitter: SimDuration::from_millis(100),
            repair2_offset: SimDuration::from_millis(300),
            flood_relay_jitter: SimDuration::from_millis(100),
            parent_check_slack: SimDuration::from_millis(300),
        }
    }

    /// Duration of one upstream per-depth slot.
    #[must_use]
    pub fn upstream_slot(&self) -> SimDuration {
        self.upstream_epoch / u64::from(self.max_depth)
    }

    /// When a node at flood `level` transmits upstream (deeper first),
    /// measured from its first query receipt.
    #[must_use]
    pub fn upstream_time(&self, level: u16) -> SimDuration {
        let depth_from_bottom = self.max_depth.saturating_sub(level.min(self.max_depth));
        self.upstream_start + self.upstream_slot() * u64::from(depth_from_bottom)
    }

    /// When the base station finalises its verdict (from time zero).
    #[must_use]
    pub fn decision_time(&self) -> SimDuration {
        self.upstream_start + self.upstream_epoch + self.upstream_slot() + self.decision_slack
    }
}

/// Full iCPDA configuration.
#[derive(Clone, Copy, Debug)]
pub struct IcpdaConfig {
    /// The statistic to compute.
    pub function: AggFunction,
    /// Cluster-head election rule.
    pub election: HeadElection,
    /// Minimum cluster size for the privacy layer to run. Clusters
    /// smaller than this do not participate (their readings are lost),
    /// mirroring the paper's treatment of under-connected nodes.
    pub min_cluster_size: usize,
    /// Maximum roster size (bounded so contributor sets fit a 64-bit
    /// mask; joins beyond this are rejected).
    pub max_cluster_size: usize,
    /// Whether lost shares trigger one NACK/retransmit repair round.
    pub share_repair: bool,
    /// Privacy layer switch (ablation).
    pub privacy: PrivacyMode,
    /// Integrity layer switch.
    pub integrity: IntegrityMode,
    /// Tolerance on monitor checks (field-centered absolute difference).
    /// The paper's `Th`: absorbs benign inconsistency, trades off with
    /// the smallest detectable pollution.
    pub threshold: u64,
    /// Number of aggregation rounds per session: round 0 includes
    /// cluster formation; later rounds reuse the formed clusters and
    /// repeat only the share exchange and upstream aggregation.
    pub rounds: u16,
    /// Phase timing.
    pub schedule: PhaseSchedule,
    /// Retry budgets and backoff for the blind-retransmission (ARQ)
    /// layer; see [`crate::reliability`].
    pub reliability: crate::reliability::ReliabilityConfig,
    /// Master secret for pairwise link keys.
    pub key_master: u64,
    /// Crash-recovery switch: when on, members watch their head's
    /// liveness (beacon + roster/FSum deadlines) and fall back to
    /// re-joining or orphan direct-report, heads solve with survivors'
    /// shares via threshold interpolation, and upstream senders reroute
    /// around silent parents. Off by default so fault-free runs are
    /// byte-identical to the pre-recovery protocol.
    pub crash_recovery: bool,
}

impl IcpdaConfig {
    /// The paper's recommended configuration: fixed `p_c = 0.25`
    /// (expected cluster size ≈ 4), minimum cluster size 3 (the smallest
    /// size with non-trivial collusion resistance), repair on, integrity
    /// on, `Th = 0`.
    #[must_use]
    pub fn paper_default(function: AggFunction) -> Self {
        IcpdaConfig {
            function,
            election: HeadElection::Fixed(0.25),
            min_cluster_size: 3,
            max_cluster_size: 16,
            share_repair: true,
            privacy: PrivacyMode::On,
            integrity: IntegrityMode::On,
            threshold: 0,
            rounds: 1,
            schedule: PhaseSchedule::paper_default(),
            reliability: crate::reliability::ReliabilityConfig::paper_default(),
            key_master: 0x1C9D_A5EC_u64,
            crash_recovery: false,
        }
    }

    /// Validates invariants between fields.
    ///
    /// # Panics
    ///
    /// Panics if sizes are inconsistent (min > max, max > 64, min < 2),
    /// the election probability is out of range, or the monitoring
    /// tolerance exceeds the meaningful half-field bound (beyond which
    /// every check trivially passes — see
    /// [`crate::monitor::MAX_MEANINGFUL_THRESHOLD`]).
    pub fn validate(&self) {
        assert!(self.rounds >= 1, "a session needs at least one round");
        assert!(
            self.min_cluster_size >= 2,
            "privacy needs at least 2 members"
        );
        assert!(self.min_cluster_size <= self.max_cluster_size);
        assert!(self.max_cluster_size <= 64, "contributor masks are 64-bit");
        if let HeadElection::Fixed(p) = self.election {
            assert!((0.0..=1.0).contains(&p), "p_c must be a probability");
        }
        assert!(
            self.threshold <= crate::monitor::MAX_MEANINGFUL_THRESHOLD,
            "threshold beyond (p-1)/2 disables monitoring entirely"
        );
        assert!(
            self.reliability.backoff >= 1,
            "backoff multiplier must be at least 1"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_probability_ignores_density() {
        let e = HeadElection::Fixed(0.3);
        assert_eq!(e.probability(1), 0.3);
        assert_eq!(e.probability(50), 0.3);
    }

    #[test]
    fn adaptive_probability_scales_inverse_density() {
        let e = HeadElection::Adaptive { k: 4.0 };
        assert_eq!(e.probability(0), 1.0);
        assert_eq!(e.probability(2), 1.0);
        assert_eq!(e.probability(8), 0.5);
        assert_eq!(e.probability(40), 0.1);
    }

    #[test]
    fn upstream_schedule_is_deeper_first() {
        let s = PhaseSchedule::paper_default();
        assert!(s.upstream_time(9) < s.upstream_time(2));
        assert!(s.decision_time() > s.upstream_time(0));
        assert_eq!(s.upstream_time(20), s.upstream_time(25));
    }

    #[test]
    fn paper_default_validates() {
        IcpdaConfig::paper_default(AggFunction::Sum).validate();
    }

    #[test]
    #[should_panic(expected = "privacy needs at least 2")]
    fn tiny_min_cluster_rejected() {
        let mut c = IcpdaConfig::paper_default(AggFunction::Sum);
        c.min_cluster_size = 1;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_rounds_rejected() {
        let mut c = IcpdaConfig::paper_default(AggFunction::Sum);
        c.rounds = 0;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "64-bit")]
    fn oversized_cluster_rejected() {
        let mut c = IcpdaConfig::paper_default(AggFunction::Sum);
        c.max_cluster_size = 65;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "disables monitoring")]
    fn absurd_threshold_rejected() {
        let mut c = IcpdaConfig::paper_default(AggFunction::Sum);
        c.threshold = crate::monitor::MAX_MEANINGFUL_THRESHOLD + 1;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "backoff multiplier")]
    fn zero_backoff_rejected() {
        let mut c = IcpdaConfig::paper_default(AggFunction::Sum);
        c.reliability.backoff = 0;
        c.validate();
    }

    #[test]
    fn boundary_threshold_accepted() {
        let mut c = IcpdaConfig::paper_default(AggFunction::Sum);
        c.threshold = crate::monitor::MAX_MEANINGFUL_THRESHOLD;
        c.validate();
    }
}
