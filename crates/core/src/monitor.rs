//! Peer monitoring — the integrity layer's verification engine.
//!
//! Every upstream report carries an *audit trail*: one [`InputClaim`] per
//! merged input, stating the input's source and the totals the sender
//! claims it contributed (see [`crate::msg::IcpdaMsg::Upstream`]). This
//! makes verification local and compositional:
//!
//! * **Consistency** — the report's totals must equal the sum of its
//!   input claims. *Any* overhearing neighbour can check this without
//!   any prior knowledge.
//! * **Per-input audit** — a monitor that overheard a referenced relay
//!   transmission, or that computed the referenced cluster aggregate
//!   itself (transparent aggregation), compares the claim against its
//!   cached value. A mismatch on *any single input* convicts the sender.
//!
//! A polluting node must therefore either break consistency (caught by
//! everyone in range) or mis-state an input (caught by whoever holds that
//! input). The one blind spot — inventing a *phantom* input no monitor
//! can refute — is inherited from the paper's non-colluding, local
//! attack model and measured explicitly by the integrity experiments.

use crate::msg::{InputClaim, MergedRef};
use agg::field::{Fp, MODULUS};
use std::collections::BTreeMap;
use wsn_sim::NodeId;

/// The largest tolerance `Th` that can ever distinguish anything: the
/// centered difference `(c − e).to_i64_centered()` of two field elements
/// lies in `[−(p−1)/2, (p−1)/2]`, so any `Th` at or above `(p−1)/2`
/// accepts *every* report unconditionally. [`MonitorCache::check`] clamps
/// to this bound (see [`effective_tolerance`]) instead of silently
/// saturating at `i64::MAX`, and [`crate::config::IcpdaConfig::validate`]
/// rejects configurations beyond it outright.
pub const MAX_MEANINGFUL_THRESHOLD: u64 = (MODULUS - 1) / 2;

/// The signed tolerance actually compared against centered differences:
/// `threshold` clamped into `0..=MAX_MEANINGFUL_THRESHOLD`. The clamp is
/// behaviour-preserving — a larger tolerance cannot reject more — and
/// documented here rather than hidden in an `unwrap_or(i64::MAX)`.
#[must_use]
pub fn effective_tolerance(threshold: u64) -> i64 {
    // The bound is < 2^60, so the cast is exact.
    threshold.min(MAX_MEANINGFUL_THRESHOLD) as i64
}

/// One cached aggregate: componentwise totals plus participant count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CachedAggregate {
    /// Componentwise totals.
    pub totals: Vec<Fp>,
    /// Sensors included.
    pub participants: u32,
}

impl CachedAggregate {
    /// Canonical wire form of the totals.
    #[must_use]
    pub fn totals_u64(&self) -> Vec<u64> {
        self.totals.iter().map(|f| f.to_u64()).collect()
    }
}

/// Outcome of auditing one upstream report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckOutcome {
    /// Consistent, and every input claim was held and matched.
    Clean,
    /// Pollution detected.
    Violation(ViolationKind),
    /// Consistent; the input claims the monitor could resolve matched,
    /// but some could not be resolved.
    PartialClean,
    /// Nothing to verify (no audit trail, e.g. integrity off).
    Unknown,
}

/// What kind of inconsistency convicted the sender.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// The report's totals do not equal the sum of its input claims.
    InconsistentSum,
    /// An input claim disagrees with the monitor's cached value.
    ForgedInput,
}

/// What one node has overheard and computed, for auditing purposes.
#[derive(Clone, Debug, Default)]
pub struct MonitorCache {
    upstream: BTreeMap<(NodeId, u32), CachedAggregate>,
    clusters: BTreeMap<NodeId, CachedAggregate>,
}

impl MonitorCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        MonitorCache::default()
    }

    /// Records an overheard (or received) upstream report.
    pub fn record_upstream(&mut self, sender: NodeId, msg_id: u32, agg: CachedAggregate) {
        self.upstream.insert((sender, msg_id), agg);
    }

    /// Records a cluster aggregate this node computed itself (it is a
    /// member of the cluster headed by `head`).
    pub fn record_cluster(&mut self, head: NodeId, agg: CachedAggregate) {
        self.clusters.insert(head, agg);
    }

    /// Number of cached upstream reports.
    #[must_use]
    pub fn upstream_len(&self) -> usize {
        self.upstream.len()
    }

    fn resolve(&self, r: &MergedRef) -> Option<&CachedAggregate> {
        match r {
            MergedRef::Relay { sender, msg_id } => self.upstream.get(&(*sender, *msg_id)),
            MergedRef::Cluster { head } => self.clusters.get(head),
        }
    }

    /// Audits a report claiming `totals`/`participants` as the merge of
    /// `inputs`, with tolerance `threshold` on each component's centered
    /// difference.
    #[must_use]
    pub fn check(
        &self,
        totals: &[Fp],
        participants: u32,
        inputs: &[InputClaim],
        threshold: u64,
    ) -> CheckOutcome {
        if inputs.is_empty() {
            return CheckOutcome::Unknown;
        }
        let th = effective_tolerance(threshold);
        // 1. Public consistency: totals == Σ claimed inputs.
        let mut claimed_sum = vec![Fp::ZERO; totals.len()];
        let mut claimed_participants: u64 = 0;
        for input in inputs {
            if input.totals.len() != totals.len() {
                return CheckOutcome::Violation(ViolationKind::InconsistentSum);
            }
            for (s, &t) in claimed_sum.iter_mut().zip(&input.totals) {
                *s += Fp::new(t);
            }
            claimed_participants += u64::from(input.participants);
        }
        let consistent = totals
            .iter()
            .zip(&claimed_sum)
            .all(|(&c, &e)| (c - e).to_i64_centered().abs() <= th)
            && u64::from(participants) == claimed_participants;
        if !consistent {
            return CheckOutcome::Violation(ViolationKind::InconsistentSum);
        }
        // 2. Per-input audit against cached knowledge.
        let mut resolved = 0usize;
        for input in inputs {
            let Some(cached) = self.resolve(&input.source) else {
                continue;
            };
            resolved += 1;
            let matches = cached.totals.len() == input.totals.len()
                && cached
                    .totals
                    .iter()
                    .zip(&input.totals)
                    .all(|(&c, &t)| (Fp::new(t) - c).to_i64_centered().abs() <= th)
                && cached.participants == input.participants;
            if !matches {
                return CheckOutcome::Violation(ViolationKind::ForgedInput);
            }
        }
        if resolved == inputs.len() {
            CheckOutcome::Clean
        } else {
            CheckOutcome::PartialClean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn agg(v: u64, p: u32) -> CachedAggregate {
        CachedAggregate {
            totals: vec![Fp::new(v)],
            participants: p,
        }
    }

    fn claim(source: MergedRef, v: u64, p: u32) -> InputClaim {
        InputClaim {
            source,
            totals: vec![v],
            participants: p,
        }
    }

    fn relay_ref(id: u32) -> MergedRef {
        MergedRef::Relay {
            sender: n(id),
            msg_id: 0,
        }
    }

    fn cache_with_two_inputs() -> (MonitorCache, Vec<InputClaim>) {
        let mut c = MonitorCache::new();
        c.record_upstream(n(1), 0, agg(10, 2));
        c.record_cluster(n(5), agg(30, 3));
        let inputs = vec![
            claim(relay_ref(1), 10, 2),
            claim(MergedRef::Cluster { head: n(5) }, 30, 3),
        ];
        (c, inputs)
    }

    #[test]
    fn honest_report_is_clean() {
        let (c, inputs) = cache_with_two_inputs();
        assert_eq!(c.check(&[Fp::new(40)], 5, &inputs, 0), CheckOutcome::Clean);
    }

    #[test]
    fn totals_not_matching_inputs_is_inconsistent() {
        let (c, inputs) = cache_with_two_inputs();
        assert_eq!(
            c.check(&[Fp::new(41)], 5, &inputs, 0),
            CheckOutcome::Violation(ViolationKind::InconsistentSum)
        );
        // Even a monitor with an EMPTY cache catches this.
        let empty = MonitorCache::new();
        assert_eq!(
            empty.check(&[Fp::new(41)], 5, &inputs, 0),
            CheckOutcome::Violation(ViolationKind::InconsistentSum)
        );
    }

    #[test]
    fn forged_input_detected_by_holder() {
        let (c, mut inputs) = cache_with_two_inputs();
        // Attacker inflates the cluster part and keeps the sum consistent.
        inputs[1].totals = vec![130];
        assert_eq!(
            c.check(&[Fp::new(140)], 5, &inputs, 0),
            CheckOutcome::Violation(ViolationKind::ForgedInput)
        );
    }

    #[test]
    fn forged_input_unnoticed_by_blind_monitor_if_consistent() {
        let mut c = MonitorCache::new();
        // Monitor only holds the relay input, which is honest.
        c.record_upstream(n(1), 0, agg(10, 2));
        let inputs = vec![
            claim(relay_ref(1), 10, 2),
            claim(MergedRef::Cluster { head: n(5) }, 130, 3), // forged, unheld
        ];
        assert_eq!(
            c.check(&[Fp::new(140)], 5, &inputs, 0),
            CheckOutcome::PartialClean
        );
    }

    #[test]
    fn participant_forgery_detected() {
        let (c, inputs) = cache_with_two_inputs();
        assert_eq!(
            c.check(&[Fp::new(40)], 6, &inputs, 0),
            CheckOutcome::Violation(ViolationKind::InconsistentSum)
        );
        // Forged participants inside an input, consistent outer sum:
        let mut forged = inputs;
        forged[0].participants = 3;
        assert_eq!(
            c.check(&[Fp::new(40)], 6, &forged, 0),
            CheckOutcome::Violation(ViolationKind::ForgedInput)
        );
    }

    #[test]
    fn threshold_absorbs_small_deviation() {
        let (c, mut inputs) = cache_with_two_inputs();
        inputs[1].totals = vec![31];
        assert_eq!(c.check(&[Fp::new(41)], 5, &inputs, 2), CheckOutcome::Clean);
        inputs[1].totals = vec![35];
        assert_eq!(
            c.check(&[Fp::new(45)], 5, &inputs, 2),
            CheckOutcome::Violation(ViolationKind::ForgedInput)
        );
    }

    #[test]
    fn unknown_without_audit_trail() {
        let c = MonitorCache::new();
        assert_eq!(c.check(&[Fp::new(1)], 1, &[], 0), CheckOutcome::Unknown);
    }

    #[test]
    fn field_wraparound_deflation_is_caught() {
        let (c, mut inputs) = cache_with_two_inputs();
        let deflated = (Fp::new(30) - Fp::new(100)).to_u64();
        inputs[1].totals = vec![deflated];
        let total = Fp::new(10) + Fp::new(deflated);
        assert_eq!(
            c.check(&[total], 5, &inputs, 0),
            CheckOutcome::Violation(ViolationKind::ForgedInput)
        );
    }

    #[test]
    fn arity_mismatch_is_violation() {
        let (c, inputs) = cache_with_two_inputs();
        assert!(matches!(
            c.check(&[Fp::new(40), Fp::new(0)], 5, &inputs, 0),
            CheckOutcome::Violation(_)
        ));
    }

    #[test]
    fn tolerance_clamps_at_the_half_field_boundary() {
        // Boundary regression for the former silent `unwrap_or(i64::MAX)`
        // saturation: the clamp must keep the comparison meaningful right
        // up to (p−1)/2 and be exactly the identity below it.
        assert_eq!(effective_tolerance(0), 0);
        assert_eq!(effective_tolerance(17), 17);
        assert_eq!(
            effective_tolerance(MAX_MEANINGFUL_THRESHOLD),
            MAX_MEANINGFUL_THRESHOLD as i64
        );
        assert_eq!(
            effective_tolerance(MAX_MEANINGFUL_THRESHOLD + 1),
            MAX_MEANINGFUL_THRESHOLD as i64
        );
        assert_eq!(
            effective_tolerance(u64::MAX),
            MAX_MEANINGFUL_THRESHOLD as i64
        );
        // At the clamp, every centered difference is accepted — the
        // documented "tolerance off" extreme, not an i64 overflow hazard.
        let (c, inputs) = cache_with_two_inputs();
        assert_eq!(
            c.check(&[Fp::new(9_999_999)], 5, &inputs, u64::MAX),
            CheckOutcome::Clean
        );
        // One past a tight tolerance still rejects (the clamp only
        // engages at the half-field bound).
        assert_eq!(
            c.check(&[Fp::new(43)], 5, &inputs, 2),
            CheckOutcome::Violation(ViolationKind::InconsistentSum)
        );
    }

    #[test]
    fn phantom_input_passes_blind_monitors() {
        // The documented blind spot: a consistent report whose extra
        // input nobody holds.
        let mut c = MonitorCache::new();
        c.record_upstream(n(1), 0, agg(10, 2));
        let inputs = vec![
            claim(relay_ref(1), 10, 2),
            claim(relay_ref(99), 1000, 1), // phantom
        ];
        assert_eq!(
            c.check(&[Fp::new(1010)], 3, &inputs, 0),
            CheckOutcome::PartialClean
        );
    }
}
