//! Multi-round aggregation sessions with attacker quarantine.
//!
//! The paper notes that a polluter could mount a denial-of-service by
//! forcing the base station to reject every round, and that the base
//! station can defeat this by excluding suspects across rounds. The
//! audit-trail alarms name the accused node directly, so recovery is
//! even simpler than the paper's O(log N) bisection sketch: after a
//! rejected round, the base station quarantines every accused node and
//! re-queries. [`run_session`] drives that loop.
//!
//! Quarantine costs the excluded nodes' readings (and any coverage they
//! provided as relays); a *false* accusation would therefore cost
//! accuracy — which is why monitors only accuse on provable
//! inconsistency (no false alarms on honest rounds, see the integrity
//! experiments).

use crate::attack::Pollution;
use crate::config::IcpdaConfig;
use crate::runner::{IcpdaOutcome, IcpdaRun};
use std::collections::{BTreeMap, BTreeSet};
use wsn_sim::{Deployment, NodeId};

/// The trace of one recovery session.
#[derive(Clone, Debug)]
pub struct SessionOutcome {
    /// Every round's outcome, in order.
    pub rounds: Vec<IcpdaOutcome>,
    /// Nodes quarantined over the session.
    pub excluded: Vec<NodeId>,
    /// Index into `rounds` of the first accepted round, if any.
    pub accepted_round: Option<usize>,
}

impl SessionOutcome {
    /// The accepted outcome, if the session converged.
    #[must_use]
    pub fn accepted(&self) -> Option<&IcpdaOutcome> {
        self.accepted_round.map(|i| &self.rounds[i])
    }

    /// Number of rounds the session used.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// `true` if no rounds ran (never produced by [`run_session`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }
}

/// Runs query rounds with quarantine *and accuser credibility*, until a
/// round is accepted or `max_rounds` is exhausted.
///
/// Policy per rejected round:
///
/// 1. every accused node is quarantined (an honest alarm names a real
///    polluter, and excluding it restores acceptance);
/// 2. an accuser whose accusations appear in **two or more** rejected
///    rounds has burned its credibility — its accusations evidently do
///    not stop the rejections, which is the signature of a *slander*
///    (false-accusation) denial-of-service. The accuser is quarantined
///    and every node it accused is re-admitted (unless someone else
///    also accused it).
///
/// Attackers that end up quarantined stay in the attacker list but are
/// passive (an excluded node transmits nothing).
///
/// # Panics
///
/// Panics if `max_rounds == 0`, `readings.len() != deployment.len()`,
/// or `config.rounds != 1` (the session layer drives one protocol round
/// per query itself).
#[must_use]
pub fn run_session(
    deployment: &Deployment,
    config: IcpdaConfig,
    readings: &[u64],
    seed: u64,
    attackers: &[(NodeId, Pollution)],
    max_rounds: usize,
) -> SessionOutcome {
    run_session_with_slander(
        deployment,
        config,
        readings,
        seed,
        attackers,
        &[],
        max_rounds,
    )
}

/// [`run_session`] with additional slander attackers (see
/// [`crate::runner::IcpdaRun::with_slanderers`]).
///
/// # Panics
///
/// As [`run_session`].
#[must_use]
pub fn run_session_with_slander(
    deployment: &Deployment,
    config: IcpdaConfig,
    readings: &[u64],
    seed: u64,
    attackers: &[(NodeId, Pollution)],
    slanderers: &[(NodeId, NodeId)],
    max_rounds: usize,
) -> SessionOutcome {
    assert!(max_rounds > 0, "a session needs at least one round");
    assert_eq!(
        config.rounds, 1,
        "run_session drives rounds itself; set config.rounds = 1"
    );
    let mut excluded: BTreeSet<NodeId> = BTreeSet::new();
    // accuser -> (rejected rounds containing its accusations, accused set)
    let mut accuser_strikes: BTreeMap<NodeId, u32> = BTreeMap::new();
    let mut accusations: BTreeMap<NodeId, BTreeSet<NodeId>> = BTreeMap::new();
    let mut rounds = Vec::new();
    let mut accepted_round = None;
    for round in 0..max_rounds {
        // Round 0 uses the caller's seed verbatim (so a probe run with
        // the same seed sees the same cluster formation); later rounds
        // derive fresh seeds.
        let round_seed = seed ^ (round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let outcome = IcpdaRun::new(deployment.clone(), config, readings.to_vec(), round_seed)
            .with_attackers(attackers.iter().copied())
            .with_slanderers(slanderers.iter().copied())
            .with_excluded(excluded.iter().copied())
            .run();
        let accepted = outcome.accepted;
        let alarms = outcome.alarms.clone();
        rounds.push(outcome);
        if accepted {
            accepted_round = Some(round);
            break;
        }
        let before = excluded.clone();
        for &(accuser, accused) in &alarms {
            excluded.insert(accused);
            *accuser_strikes.entry(accuser).or_insert(0) += 1;
            accusations.entry(accuser).or_default().insert(accused);
        }
        // Credibility: a repeat accuser across rejected rounds is the
        // problem itself. Quarantine it; exonerate its victims.
        let burned: Vec<NodeId> = accuser_strikes
            .iter()
            .filter(|(_, &strikes)| strikes >= 2)
            .map(|(&a, _)| a)
            .collect();
        for accuser in burned {
            excluded.insert(accuser);
            if let Some(victims) = accusations.get(&accuser) {
                for victim in victims {
                    let accused_by_others = accusations
                        .iter()
                        .any(|(a, set)| *a != accuser && set.contains(victim));
                    if !accused_by_others {
                        excluded.remove(victim);
                    }
                }
            }
        }
        if excluded == before {
            // Rejected without changing the quarantine set: no progress.
            break;
        }
    }
    SessionOutcome {
        rounds,
        excluded: excluded.into_iter().collect(),
        accepted_round,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agg::AggFunction;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use wsn_sim::geometry::Region;

    fn network(n: usize) -> Deployment {
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        Deployment::uniform_random_with_central_bs(n, Region::paper_default(), 50.0, &mut rng)
    }

    #[test]
    fn honest_session_converges_in_one_round() {
        let dep = network(150);
        let readings = agg::readings::count_readings(150);
        let config = IcpdaConfig::paper_default(AggFunction::Count);
        let session = run_session(&dep, config, &readings, 5, &[], 4);
        assert_eq!(session.accepted_round, Some(0));
        assert_eq!(session.len(), 1);
        assert!(session.excluded.is_empty());
    }

    #[test]
    fn attacked_session_recovers_by_quarantine() {
        let dep = network(200);
        let readings = agg::readings::count_readings(200);
        let config = IcpdaConfig::paper_default(AggFunction::Count);
        // Find a head to compromise.
        let honest = IcpdaRun::new(dep.clone(), config, readings.clone(), 5).run();
        let head = honest
            .rosters
            .iter()
            .find_map(|(node, r)| (r.head() == *node).then_some(*node))
            .expect("heads exist");
        let attackers = [(head, Pollution::inflate(9_999))];
        let session = run_session(&dep, config, &readings, 5, &attackers, 5);
        let accepted = session.accepted().expect("session must converge");
        assert!(session.accepted_round.unwrap() >= 1, "first round rejected");
        assert!(
            session.excluded.contains(&head),
            "the polluter is quarantined"
        );
        // The accepted round is clean and close to truth (minus the
        // quarantined node's own contribution and collateral coverage).
        assert!(accepted.accepted);
        assert!(accepted.value <= accepted.truth);
        assert!(accepted.accuracy() > 0.7, "{}", accepted.accuracy());
    }

    #[test]
    fn session_stops_without_progress() {
        // A phantom-input attacker is never named; but its rounds are
        // *accepted*, so the session converges immediately (with the
        // pollution inside — the documented blind spot).
        let dep = network(150);
        let readings = agg::readings::count_readings(150);
        let config = IcpdaConfig::paper_default(AggFunction::Count);
        let honest = IcpdaRun::new(dep.clone(), config, readings.clone(), 5).run();
        let head = honest
            .rosters
            .iter()
            .find_map(|(node, r)| (r.head() == *node).then_some(*node))
            .expect("heads exist");
        let attackers = [(head, Pollution::phantom(5_000, 5))];
        let session = run_session(&dep, config, &readings, 5, &attackers, 3);
        assert_eq!(session.accepted_round, Some(0));
    }

    #[test]
    fn slander_dos_is_defeated_by_credibility_tracking() {
        let dep = network(200);
        let readings = agg::readings::count_readings(200);
        let config = IcpdaConfig::paper_default(AggFunction::Count);
        // An ordinary member slanders an innocent head every round.
        let probe = IcpdaRun::new(dep.clone(), config, readings.clone(), 5).run();
        let victim = probe
            .rosters
            .iter()
            .find_map(|(n, r)| (r.head() == *n).then_some(*n))
            .expect("heads exist");
        let slanderer = probe
            .rosters
            .iter()
            .find_map(|(n, r)| (r.head() != *n && *n != victim).then_some(*n))
            .expect("members exist");
        let session = super::run_session_with_slander(
            &dep,
            config,
            &readings,
            5,
            &[],
            &[(slanderer, victim)],
            6,
        );
        let accepted = session.accepted().expect("session converges");
        assert!(
            session.excluded.contains(&slanderer),
            "the slanderer is quarantined: {:?}",
            session.excluded
        );
        assert!(
            !session.excluded.contains(&victim),
            "the victim is exonerated: {:?}",
            session.excluded
        );
        assert!(accepted.accepted);
        assert!(accepted.accuracy() > 0.8, "{}", accepted.accuracy());
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_rounds_rejected() {
        let dep = network(10);
        let readings = agg::readings::count_readings(10);
        let _ = run_session(
            &dep,
            IcpdaConfig::paper_default(AggFunction::Count),
            &readings,
            1,
            &[],
            0,
        );
    }
}
