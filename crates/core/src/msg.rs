//! iCPDA wire messages and their analytic sizes.
//!
//! Sizes are what the communication-overhead figures account: a type tag
//! plus each field's natural encoding. Encrypted shares carry the sealed
//! box produced by [`wsn_crypto::cipher::seal`] (nonce + tag + ciphertext).

use wsn_crypto::Sealed;
use wsn_sim::{NodeId, WireSize};

/// Reference to an input merged into an upstream report — the integrity
/// layer's audit trail. A monitor that overheard (or locally computed)
/// every referenced input can recompute the report and verify it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MergedRef {
    /// An upstream message previously transmitted by `sender` with the
    /// given per-sender sequence number.
    Relay {
        /// The transmitting node of the merged upstream message.
        sender: NodeId,
        /// The sender's per-node upstream sequence number.
        msg_id: u32,
    },
    /// The cluster aggregate of the cluster headed by `head` (verifiable
    /// by every member of that cluster, who computed it independently).
    Cluster {
        /// The cluster's head node.
        head: NodeId,
    },
}

impl MergedRef {
    fn wire_size(&self) -> usize {
        match self {
            MergedRef::Relay { .. } => 1 + 4 + 4,
            MergedRef::Cluster { .. } => 1 + 4,
        }
    }
}

/// One entry of an upstream report's audit trail: the input's source and
/// the totals the sender claims it contributed. Monitors verify claims
/// against what they overheard or computed themselves; everyone can
/// verify that the report's totals equal the sum of its claims.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InputClaim {
    /// Where the input came from.
    pub source: MergedRef,
    /// Claimed componentwise totals (canonical field representatives).
    pub totals: Vec<u64>,
    /// Claimed participant count.
    pub participants: u32,
}

impl InputClaim {
    fn wire_size(&self) -> usize {
        self.source.wire_size() + 8 * self.totals.len() + 4
    }
}

/// All iCPDA protocol messages.
#[derive(Clone, Debug, PartialEq)]
pub enum IcpdaMsg {
    /// The base station's query flood; also builds the relay tree
    /// (every node remembers its first sender as flood parent).
    Query {
        /// Hop count of the sender (base station = 0).
        level: u16,
    },
    /// A self-elected cluster head announcing itself to its one-hop
    /// neighbourhood.
    HeadAnnounce,
    /// A non-head node joining the cluster of a neighbouring head.
    Join {
        /// The head being joined.
        head: NodeId,
    },
    /// A head whose cluster is too small for the privacy layer resigns;
    /// its joiners (and the head itself) re-join other clusters.
    Resign {
        /// The resigning head.
        head: NodeId,
    },
    /// The head's roster broadcast: fixes membership, roster order (and
    /// therefore the public seeds) for the share exchange.
    ClusterInfo {
        /// The head (cluster id).
        head: NodeId,
        /// Sorted members, head included.
        members: Vec<NodeId>,
        /// Per-cluster random phase stagger in milliseconds: the head
        /// shifts its cluster's entire share-exchange schedule by this
        /// amount so concurrent clusters do not burst simultaneously.
        stagger_ms: u16,
    },
    /// An encrypted blinded share, member → member.
    Share {
        /// Cluster the share belongs to.
        cluster: NodeId,
        /// The member that generated (and sealed) the share; differs from
        /// the link-layer sender when the share was relayed via the head.
        origin: NodeId,
        /// End-to-end sealed share vector.
        sealed: Sealed,
    },
    /// A share for a member out of the sender's radio range, relayed via
    /// the head (still sealed end-to-end; the head cannot read it).
    ShareRelay {
        /// Cluster the share belongs to.
        cluster: NodeId,
        /// The member that generated the share.
        origin: NodeId,
        /// Final recipient.
        to: NodeId,
        /// End-to-end sealed share vector.
        sealed: Sealed,
    },
    /// A member's raw (link-encrypted) reading sent straight to its
    /// head — the privacy-off baseline's replacement for the share
    /// exchange.
    RawReading {
        /// Cluster the reading belongs to.
        cluster: NodeId,
        /// End-to-end sealed contribution vector.
        sealed: Sealed,
    },
    /// Repair round: a member lists senders whose shares it is missing.
    /// The head forwards NACKs to out-of-range addressees, so the member
    /// that needs the retransmissions is named explicitly.
    ShareNack {
        /// Cluster the repair belongs to.
        cluster: NodeId,
        /// The member missing the shares (the retransmission target).
        requester: NodeId,
        /// Senders whose shares were lost.
        missing: Vec<NodeId>,
    },
    /// The assembled blinded sum `F_j`, broadcast inside the cluster
    /// (transparent aggregation: every member can solve for the cluster
    /// sum once it holds all `F_j`).
    FSum {
        /// Cluster the assembly belongs to.
        cluster: NodeId,
        /// Canonical field representatives, one per aggregate component.
        values: Vec<u64>,
        /// Bitmask over roster positions whose shares are included.
        contributors: u64,
    },
    /// Repair round for lost `FSum` broadcasts: a member lists roster
    /// positions whose assemblies it is missing; those members rebroadcast.
    FsumNack {
        /// Cluster the repair belongs to.
        cluster: NodeId,
        /// Bitmask over roster positions whose `FSum` is missing.
        missing: u64,
    },
    /// A re-broadcast of another member's assembled sum, answering an
    /// [`IcpdaMsg::FsumNack`] for a roster position whose original
    /// broadcast the requester missed (members can be two hops apart).
    FsumEcho {
        /// Cluster the echo belongs to.
        cluster: NodeId,
        /// Roster position whose assembly is echoed.
        position: u8,
        /// The echoed assembly values.
        values: Vec<u64>,
        /// The echoed contributor bitmask.
        contributors: u64,
    },
    /// A partial aggregate travelling up the flood tree toward the base
    /// station.
    Upstream {
        /// Per-sender sequence number (for [`MergedRef::Relay`]).
        msg_id: u32,
        /// Componentwise totals (canonical field representatives).
        totals: Vec<u64>,
        /// Number of sensors aggregated into `totals`.
        participants: u32,
        /// Audit trail of merged inputs (empty when integrity is off).
        inputs: Vec<InputClaim>,
    },
    /// Starts another aggregation round over the already-formed
    /// clusters (phases II–III repeat; formation is amortised).
    NewRound {
        /// Round number (the first query is round 0).
        round: u16,
    },
    /// A head's periodic liveness beacon (crash-recovery mode only):
    /// members that stop hearing it past a deadline declare the head
    /// dead and fall back to re-joining or orphan direct-report.
    HeadBeacon {
        /// The beaconing head.
        head: NodeId,
    },
    /// A monitor's pollution accusation, routed up the flood tree.
    Alarm {
        /// The monitoring node raising the alarm.
        accuser: NodeId,
        /// The node whose upstream report failed verification.
        accused: NodeId,
    },
}

impl WireSize for IcpdaMsg {
    fn wire_size(&self) -> usize {
        match self {
            IcpdaMsg::Query { .. } => 1 + 2,
            IcpdaMsg::HeadAnnounce => 1,
            IcpdaMsg::Join { .. } => 1 + 4,
            IcpdaMsg::Resign { .. } => 1 + 4,
            IcpdaMsg::ClusterInfo { members, .. } => 1 + 4 + 2 + 1 + 4 * members.len(),
            IcpdaMsg::Share { sealed, .. } => 1 + 4 + 4 + sealed.wire_size(),
            IcpdaMsg::ShareRelay { sealed, .. } => 1 + 4 + 4 + 4 + sealed.wire_size(),
            IcpdaMsg::RawReading { sealed, .. } => 1 + 4 + sealed.wire_size(),
            IcpdaMsg::ShareNack { missing, .. } => 1 + 4 + 4 + 1 + 4 * missing.len(),
            IcpdaMsg::FSum { values, .. } => 1 + 4 + 8 * values.len() + 8,
            IcpdaMsg::FsumNack { .. } => 1 + 4 + 8,
            IcpdaMsg::FsumEcho { values, .. } => 1 + 4 + 1 + 8 * values.len() + 8,
            IcpdaMsg::Upstream { totals, inputs, .. } => {
                1 + 4
                    + 8 * totals.len()
                    + 4
                    + 1
                    + inputs.iter().map(InputClaim::wire_size).sum::<usize>()
            }
            IcpdaMsg::NewRound { .. } => 1 + 2,
            IcpdaMsg::HeadBeacon { .. } => 1 + 4,
            IcpdaMsg::Alarm { .. } => 1 + 4 + 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_crypto::{seal, LinkKey};

    #[test]
    fn sizes_scale_with_content() {
        let small = IcpdaMsg::ClusterInfo {
            head: NodeId::new(1),
            members: vec![NodeId::new(1)],
            stagger_ms: 0,
        };
        let large = IcpdaMsg::ClusterInfo {
            head: NodeId::new(1),
            members: (0..8).map(NodeId::new).collect(),
            stagger_ms: 900,
        };
        assert_eq!(large.wire_size() - small.wire_size(), 7 * 4);
    }

    #[test]
    fn share_size_includes_sealed_box() {
        let sealed = seal(LinkKey(1), 1, &[0u8; 16]);
        let msg = IcpdaMsg::Share {
            cluster: NodeId::new(0),
            origin: NodeId::new(2),
            sealed: sealed.clone(),
        };
        assert_eq!(msg.wire_size(), 1 + 4 + 4 + sealed.wire_size());
        let relayed = IcpdaMsg::ShareRelay {
            cluster: NodeId::new(0),
            origin: NodeId::new(2),
            to: NodeId::new(3),
            sealed,
        };
        assert_eq!(relayed.wire_size(), msg.wire_size() + 4);
    }

    #[test]
    fn upstream_size_scales_with_audit_trail() {
        let base = IcpdaMsg::Upstream {
            msg_id: 0,
            totals: vec![1, 2],
            participants: 3,
            inputs: vec![],
        };
        let with_inputs = IcpdaMsg::Upstream {
            msg_id: 0,
            totals: vec![1, 2],
            participants: 3,
            inputs: vec![
                InputClaim {
                    source: MergedRef::Cluster {
                        head: NodeId::new(1),
                    },
                    totals: vec![1, 1],
                    participants: 2,
                },
                InputClaim {
                    source: MergedRef::Relay {
                        sender: NodeId::new(2),
                        msg_id: 0,
                    },
                    totals: vec![0, 1],
                    participants: 1,
                },
            ],
        };
        // Cluster claim: 5 + 16 + 4; relay claim: 9 + 16 + 4.
        assert_eq!(with_inputs.wire_size() - base.wire_size(), 25 + 29);
    }

    #[test]
    fn tiny_messages_stay_tiny() {
        assert_eq!(IcpdaMsg::HeadAnnounce.wire_size(), 1);
        assert_eq!(IcpdaMsg::Query { level: 9 }.wire_size(), 3);
        assert_eq!(
            IcpdaMsg::Alarm {
                accuser: NodeId::new(1),
                accused: NodeId::new(2)
            }
            .wire_size(),
            9
        );
    }
}
