//! The intra-cluster secret-sharing algebra.
//!
//! Every cluster member `i` holding additive contributions
//! `d_i = (d_i^{(1)}, …, d_i^{(c)})` (one component per aggregate
//! component, see [`agg::AggFunction`]) blinds each component with its
//! own random polynomial of degree `m − 1` (constant term the
//! component value) and hands member `j` the evaluation at the public
//! seed `x_j`:
//!
//! ```text
//! v_j^i = d_i + r_1^i·x_j + r_2^i·x_j² + … + r_{m−1}^i·x_j^{m−1}
//! ```
//!
//! Member `j` assembles `F_j = Σ_i v_j^i` and broadcasts it inside the
//! cluster. Because `F_j = P(x_j)` for the *sum polynomial*
//! `P = Σ_i P_i` whose constant term is the cluster sum, any member
//! holding all `m` broadcasts recovers the sum by Lagrange interpolation
//! at zero — without ever seeing an individual `d_i`.

use agg::field::{random_fp, Fp};
use rand::Rng;

/// The public, pairwise-distinct, non-zero evaluation seeds of a
/// cluster: member at roster position `j` uses seed `x_j = j + 1`.
///
/// # Examples
///
/// ```
/// use icpda::shares::seed_for;
/// assert_eq!(seed_for(0).to_u64(), 1);
/// assert_eq!(seed_for(3).to_u64(), 4);
/// ```
#[must_use]
pub fn seed_for(roster_index: usize) -> Fp {
    Fp::new(roster_index as u64 + 1)
}

/// The blinded share a member sends to (or keeps for) one roster
/// position: one field element per aggregate component.
pub type ShareVector = Vec<Fp>;

/// Generates the `m` share vectors of one member: entry `j` is the
/// evaluation destined for roster position `j` (including the member's
/// own kept share).
///
/// Each component of the contribution is blinded by an independent
/// polynomial with uniformly random coefficients, so any `m − 1` shares
/// of a member are jointly uniform (information-theoretic hiding).
///
/// # Panics
///
/// Panics if `m == 0`.
#[must_use]
pub fn generate_shares<R: Rng + ?Sized>(
    contribution: &[u64],
    m: usize,
    rng: &mut R,
) -> Vec<ShareVector> {
    generate_shares_t(contribution, m, m, rng)
}

/// Generates the `m` share vectors of one member with an explicit
/// recovery threshold: the blinding polynomials have degree
/// `threshold − 1`, so any `threshold` assemblies reconstruct the sum
/// (crash tolerance) while any `threshold − 1` shares stay jointly
/// uniform (the collusion bound drops from `m − 1` accordingly).
///
/// With `threshold == m` this is exactly [`generate_shares`] — same
/// polynomials, same RNG draws.
///
/// # Panics
///
/// Panics if `m == 0` or `threshold` is not in `1..=m`.
#[must_use]
pub fn generate_shares_t<R: Rng + ?Sized>(
    contribution: &[u64],
    m: usize,
    threshold: usize,
    rng: &mut R,
) -> Vec<ShareVector> {
    assert!(m > 0, "cluster must have at least one member");
    assert!(
        (1..=m).contains(&threshold),
        "recovery threshold must be in 1..=m"
    );
    let components = contribution.len();
    // coeffs[comp] = [d, r_1, ..., r_{threshold-1}]
    let coeffs: Vec<Vec<Fp>> = contribution
        .iter()
        .map(|&d| {
            let mut poly = Vec::with_capacity(threshold);
            poly.push(Fp::new(d));
            for _ in 1..threshold {
                poly.push(random_fp(rng));
            }
            poly
        })
        .collect();
    (0..m)
        .map(|j| {
            let x = seed_for(j);
            (0..components)
                .map(|comp| eval_poly(&coeffs[comp], x))
                .collect()
        })
        .collect()
}

/// Horner evaluation of a polynomial given in ascending-degree order.
#[must_use]
fn eval_poly(coeffs: &[Fp], x: Fp) -> Fp {
    coeffs.iter().rev().fold(Fp::ZERO, |acc, &c| acc * x + c)
}

/// Sums share vectors componentwise (the assembly step `F_j = Σ_i v_j^i`).
///
/// # Panics
///
/// Panics if the vectors disagree on component count.
#[must_use]
pub fn assemble(shares: &[ShareVector]) -> ShareVector {
    let Some(first) = shares.first() else {
        return Vec::new();
    };
    let mut acc = vec![Fp::ZERO; first.len()];
    for share in shares {
        assert_eq!(share.len(), acc.len(), "component count mismatch");
        for (a, &s) in acc.iter_mut().zip(share) {
            *a += s;
        }
    }
    acc
}

/// Recovers the cluster-sum vector from the `m` broadcast assemblies:
/// Lagrange interpolation of the sum polynomial at zero, per component.
///
/// `assemblies[j]` must be the `F_j` of roster position `j` (seed
/// `x_j = j + 1`), all with the same component count.
///
/// Returns `None` if fewer than one assembly is present or the component
/// counts disagree (a malformed cluster round).
#[must_use]
pub fn recover_sum(assemblies: &[ShareVector]) -> Option<ShareVector> {
    let m = assemblies.len();
    let components = assemblies.first()?.len();
    if assemblies.iter().any(|a| a.len() != components) {
        return None;
    }
    // Lagrange basis at zero: L_j(0) = Π_{k≠j} x_k / (x_k − x_j).
    // The denominators are inverted together (Montgomery's batch trick):
    // one Fermat inversion for the whole basis instead of one per point.
    let xs: Vec<Fp> = (0..m).map(seed_for).collect();
    let mut nums = Vec::with_capacity(m);
    let mut dens = Vec::with_capacity(m);
    for j in 0..m {
        let mut num = Fp::ONE;
        let mut den = Fp::ONE;
        for k in 0..m {
            if k != j {
                num *= xs[k];
                den *= xs[k] - xs[j];
            }
        }
        nums.push(num);
        dens.push(den);
    }
    Fp::batch_inverse(&mut dens)?;
    let weights: Vec<Fp> = nums.iter().zip(&dens).map(|(&n, &d)| n * d).collect();
    let mut sum = vec![Fp::ZERO; components];
    for (j, assembly) in assemblies.iter().enumerate() {
        for (acc, &f) in sum.iter_mut().zip(assembly) {
            *acc += f * weights[j];
        }
    }
    Some(sum)
}

/// Recovers the cluster-sum vector from a *subset* of the broadcast
/// assemblies: `points` pairs each surviving roster position `j` with its
/// assembly `F_j = P(x_j)`. Lagrange interpolation at zero over exactly
/// the present seeds — correct whenever the number of points is at least
/// the sharing threshold (with more points, interpolation of a
/// lower-degree polynomial is still exact).
///
/// Returns `None` if no point is present, positions repeat, or the
/// component counts disagree.
#[must_use]
pub fn recover_sum_at(points: &[(usize, ShareVector)]) -> Option<ShareVector> {
    let components = points.first().map(|(_, a)| a.len())?;
    if points.iter().any(|(_, a)| a.len() != components) {
        return None;
    }
    let xs: Vec<Fp> = points.iter().map(|&(j, _)| seed_for(j)).collect();
    // Repeated positions make the Lagrange denominators vanish.
    for (i, &xi) in xs.iter().enumerate() {
        if xs.iter().skip(i + 1).any(|&xk| xk == xi) {
            return None;
        }
    }
    let mut nums = Vec::with_capacity(xs.len());
    let mut dens = Vec::with_capacity(xs.len());
    for (j, &xj) in xs.iter().enumerate() {
        let mut num = Fp::ONE;
        let mut den = Fp::ONE;
        for (k, &xk) in xs.iter().enumerate() {
            if k != j {
                num *= xk;
                den *= xk - xj;
            }
        }
        nums.push(num);
        dens.push(den);
    }
    Fp::batch_inverse(&mut dens)?;
    let weights: Vec<Fp> = nums.iter().zip(&dens).map(|(&n, &d)| n * d).collect();
    let mut sum = vec![Fp::ZERO; components];
    for ((_, assembly), &w) in points.iter().zip(&weights) {
        for (acc, &f) in sum.iter_mut().zip(assembly) {
            *acc += f * w;
        }
    }
    Some(sum)
}

/// Serialises a share vector for sealing (8 bytes per component,
/// little-endian canonical field representatives).
#[must_use]
pub fn share_to_bytes(share: &[Fp]) -> Vec<u8> {
    share
        .iter()
        .flat_map(|f| f.to_u64().to_le_bytes())
        .collect()
}

/// Parses a serialised share vector; `None` on a malformed length.
#[must_use]
pub fn share_from_bytes(bytes: &[u8]) -> Option<ShareVector> {
    if !bytes.len().is_multiple_of(8) {
        return None;
    }
    bytes
        .chunks_exact(8)
        .map(|c| {
            <[u8; 8]>::try_from(c)
                .ok()
                .map(u64::from_le_bytes)
                .map(Fp::new)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// End-to-end algebra: every member shares, assemblies recover the
    /// exact componentwise sum.
    fn roundtrip(contributions: &[Vec<u64>]) -> Vec<u64> {
        let m = contributions.len();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let all_shares: Vec<Vec<ShareVector>> = contributions
            .iter()
            .map(|c| generate_shares(c, m, &mut rng))
            .collect();
        // Member j assembles the shares destined to position j.
        let assemblies: Vec<ShareVector> = (0..m)
            .map(|j| {
                let received: Vec<ShareVector> = all_shares.iter().map(|s| s[j].clone()).collect();
                assemble(&received)
            })
            .collect();
        recover_sum(&assemblies)
            .expect("solvable")
            .iter()
            .map(|f| f.to_u64())
            .collect()
    }

    #[test]
    fn recovers_sum_for_three_members() {
        let got = roundtrip(&[vec![10], vec![20], vec![30]]);
        assert_eq!(got, vec![60]);
    }

    #[test]
    fn recovers_vector_components() {
        // AVG-style contributions [1, r].
        let got = roundtrip(&[vec![1, 10], vec![1, 20], vec![1, 33]]);
        assert_eq!(got, vec![3, 63]);
    }

    #[test]
    fn works_for_two_member_clusters() {
        assert_eq!(roundtrip(&[vec![7], vec![8]]), vec![15]);
    }

    #[test]
    fn works_for_large_clusters() {
        let contributions: Vec<Vec<u64>> = (0..16).map(|i| vec![i * i]).collect();
        let expect: u64 = (0..16).map(|i| i * i).sum();
        assert_eq!(roundtrip(&contributions), vec![expect]);
    }

    #[test]
    fn single_member_cluster_is_identity() {
        assert_eq!(roundtrip(&[vec![42]]), vec![42]);
    }

    #[test]
    fn shares_are_blinded() {
        // A share must not equal the raw value (overwhelming probability).
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let shares = generate_shares(&[1234], 4, &mut rng);
        let leaks = shares.iter().filter(|s| s[0].to_u64() == 1234).count();
        assert_eq!(leaks, 0, "blinding failed");
    }

    #[test]
    fn m_minus_1_shares_leave_value_undetermined() {
        // Generate twice with different values; the distribution of any
        // m-1 shares is identical (uniform), so observing them cannot
        // distinguish the value. We verify the algebraic core: given
        // m-1 shares there exist polynomials consistent with *any*
        // constant term. Constructive check for m = 3.
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let shares = generate_shares(&[555], 3, &mut rng);
        // Adversary sees shares for positions 1 and 2 (not the kept 0).
        let (v1, v2) = (shares[1][0], shares[2][0]);
        let (x1, x2) = (seed_for(1), seed_for(2));
        // For an arbitrary hypothesis d', solve for (r1, r2):
        for d_hyp in [0u64, 1, 999, 123_456] {
            let d = Fp::new(d_hyp);
            // v1 - d = r1 x1 + r2 x1², v2 - d = r1 x2 + r2 x2².
            let det = x1 * (x2 * x2) - x2 * (x1 * x1);
            let r1 = ((v1 - d) * (x2 * x2) - (v2 - d) * (x1 * x1)) * det.inverse().unwrap();
            let r2 = (x1 * (v2 - d) - x2 * (v1 - d)) * det.inverse().unwrap();
            // The hypothesis is consistent: it reproduces both shares.
            assert_eq!(d + r1 * x1 + r2 * x1 * x1, v1);
            assert_eq!(d + r1 * x2 + r2 * x2 * x2, v2);
        }
    }

    /// Threshold roundtrip with survivors: every member shares with
    /// threshold `t`, then only `alive` positions assemble and solve.
    fn threshold_roundtrip(contributions: &[Vec<u64>], t: usize, alive: &[usize]) -> Vec<u64> {
        let m = contributions.len();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let all_shares: Vec<Vec<ShareVector>> = contributions
            .iter()
            .map(|c| generate_shares_t(c, m, t, &mut rng))
            .collect();
        let points: Vec<(usize, ShareVector)> = alive
            .iter()
            .map(|&j| {
                let received: Vec<ShareVector> = all_shares.iter().map(|s| s[j].clone()).collect();
                (j, assemble(&received))
            })
            .collect();
        recover_sum_at(&points)
            .expect("solvable")
            .iter()
            .map(|f| f.to_u64())
            .collect()
    }

    #[test]
    fn threshold_recovery_survives_missing_positions() {
        let contributions = vec![vec![10], vec![20], vec![30], vec![40], vec![50]];
        // Threshold 3 of 5: any 3 surviving positions recover the sum.
        assert_eq!(
            threshold_roundtrip(&contributions, 3, &[0, 2, 4]),
            vec![150]
        );
        assert_eq!(
            threshold_roundtrip(&contributions, 3, &[1, 2, 3]),
            vec![150]
        );
        // Extra surviving points beyond the threshold stay exact.
        assert_eq!(
            threshold_roundtrip(&contributions, 3, &[0, 1, 2, 3]),
            vec![150]
        );
        assert_eq!(
            threshold_roundtrip(&contributions, 3, &[0, 1, 2, 3, 4]),
            vec![150]
        );
    }

    #[test]
    fn threshold_equal_to_m_matches_generate_shares() {
        let mut rng_a = ChaCha8Rng::seed_from_u64(3);
        let mut rng_b = ChaCha8Rng::seed_from_u64(3);
        let a = generate_shares(&[77, 5], 4, &mut rng_a);
        let b = generate_shares_t(&[77, 5], 4, 4, &mut rng_b);
        assert_eq!(a, b);
    }

    #[test]
    fn recover_sum_at_full_set_matches_recover_sum() {
        let contributions = vec![vec![7], vec![8], vec![9]];
        assert_eq!(roundtrip(&contributions), vec![24]);
        assert_eq!(threshold_roundtrip(&contributions, 3, &[0, 1, 2]), vec![24]);
    }

    #[test]
    fn recover_sum_at_rejects_malformed_inputs() {
        assert_eq!(recover_sum_at(&[]), None);
        // Repeated positions.
        let p = vec![(1usize, vec![Fp::new(5)]), (1usize, vec![Fp::new(6)])];
        assert_eq!(recover_sum_at(&p), None);
        // Mismatched components.
        let q = vec![
            (0usize, vec![Fp::new(5)]),
            (1usize, vec![Fp::new(6), Fp::new(7)]),
        ];
        assert_eq!(recover_sum_at(&q), None);
    }

    #[test]
    fn recover_rejects_mismatched_components() {
        let a = vec![vec![Fp::new(1)], vec![Fp::new(2), Fp::new(3)]];
        assert_eq!(recover_sum(&a), None);
    }

    #[test]
    fn byte_roundtrip() {
        let share = vec![Fp::new(1), Fp::new(u64::MAX / 4), Fp::ZERO];
        let bytes = share_to_bytes(&share);
        assert_eq!(bytes.len(), 24);
        assert_eq!(share_from_bytes(&bytes), Some(share));
        assert_eq!(share_from_bytes(&bytes[..7]), None);
    }

    #[test]
    fn seeds_are_distinct_and_nonzero() {
        let seeds: Vec<u64> = (0..64).map(|j| seed_for(j).to_u64()).collect();
        let set: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(set.len(), 64);
        assert!(seeds.iter().all(|&s| s != 0));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The fundamental correctness invariant of the privacy layer.
        #[test]
        fn share_assemble_recover_is_exact_sum(
            values in prop::collection::vec(0u64..1_000_000, 2..12),
        ) {
            let contributions: Vec<Vec<u64>> = values.iter().map(|&v| vec![v]).collect();
            let expect: u64 = values.iter().sum();
            prop_assert_eq!(roundtrip(&contributions), vec![expect]);
        }

        /// Share vectors destined to different positions differ (the
        /// polynomial is non-constant with overwhelming probability).
        #[test]
        fn shares_vary_across_positions(value in 0u64..1_000_000, seed in 0u64..1000) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let shares = generate_shares(&[value], 4, &mut rng);
            let distinct: std::collections::HashSet<u64> =
                shares.iter().map(|s| s[0].to_u64()).collect();
            prop_assert!(distinct.len() >= 2);
        }
    }
}
