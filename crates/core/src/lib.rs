//! # icpda — cluster-based integrity-enforcing, privacy-preserving data aggregation
//!
//! A from-scratch reproduction of the ICDCS 2009 cluster-based protocol
//! that *simultaneously* preserves the privacy of individual sensor
//! readings and lets the base station detect data-pollution attacks,
//! while still computing exact additive aggregates in-network.
//!
//! The protocol's three phases (see [`node::IcpdaNode`]):
//!
//! 1. **Cluster formation** ([`cluster`]) — probabilistic head
//!    self-election on the query flood, one-hop joins, roster broadcast.
//! 2. **Privacy** ([`shares`]) — intra-cluster additive secret sharing
//!    with polynomial blinding over 𝔽ₚ; the cluster sum is recovered by
//!    interpolation while individual readings stay information-
//!    theoretically hidden unless an adversary captures *all* of a
//!    member's share traffic ([`privacy`]).
//! 3. **Integrity** ([`monitor`]) — transparent intra-cluster
//!    aggregation plus promiscuous peer monitoring of upstream reports,
//!    with alarms routed to the base station, which rejects polluted
//!    rounds.
//!
//! # Examples
//!
//! ```
//! use agg::AggFunction;
//! use icpda::{IcpdaConfig, IcpdaRun};
//! use rand::SeedableRng;
//! use wsn_sim::geometry::Region;
//! use wsn_sim::topology::Deployment;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let dep = Deployment::uniform_random_with_central_bs(
//!     150, Region::paper_default(), 50.0, &mut rng);
//! let readings = agg::readings::count_readings(150);
//! let outcome = IcpdaRun::new(
//!     dep, IcpdaConfig::paper_default(AggFunction::Count), readings, 42).run();
//! assert!(outcome.accepted, "honest round is accepted");
//! ```

#![forbid(unsafe_code)]

pub mod adversary;
pub mod attack;
pub mod cluster;
pub mod config;
pub mod monitor;
pub mod msg;
pub mod node;
pub mod privacy;
pub mod reliability;
pub mod runner;
pub mod session;
pub mod shares;

pub use adversary::{
    evaluate_collusion, AdversaryPlan, AdversaryPlanError, Behavior, CollusionReport, CollusionView,
};
pub use attack::Pollution;
pub use cluster::Roster;
pub use config::{HeadElection, IcpdaConfig, IntegrityMode, PhaseSchedule, PrivacyMode};
pub use monitor::{CachedAggregate, CheckOutcome, MonitorCache};
pub use msg::{IcpdaMsg, MergedRef};
pub use node::{BsDecision, IcpdaNode, Role};
pub use privacy::{evaluate_disclosure, evaluate_disclosure_with_keys, DisclosureReport};
pub use reliability::{ReliabilityConfig, RetryState};
pub use runner::{IcpdaOutcome, IcpdaRun, StreamOutcome};
pub use session::{run_session, run_session_with_slander, SessionOutcome};
