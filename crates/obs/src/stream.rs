//! Streaming JSONL export: bounded-memory emission of obs artefacts.
//!
//! The buffered exporter ([`crate::export::write_dir`]) renders the whole
//! registry at the end of a run — simple, but at N=50k a full-trace
//! capture buffers hundreds of megabytes before the first byte hits
//! disk. This module replaces buffer-then-export with incremental
//! emission through a **fixed-size reusable buffer**:
//!
//! * [`JsonlSink`] — a line-oriented writer that renders records into one
//!   reused `String` and flushes it to the underlying file whenever it
//!   crosses its capacity. Memory is bounded by the buffer capacity plus
//!   one record, independent of run length.
//! * [`ObsStream`] — an obs directory opened for streaming: spans drain
//!   into `spans.jsonl` at every round boundary (see
//!   `IcpdaRun::with_obs_stream` in `icpda`), `trace.jsonl` sinks are
//!   handed to the engine, and `finish` writes `manifest.json` +
//!   `metrics.jsonl` exactly as the buffered path would.
//!
//! **Byte-identity:** every record kind has exactly one renderer
//! ([`crate::export::write_span_line`], `metrics_jsonl`, the trace-entry
//! renderer in `wsn-sim`), shared between the buffered and streaming
//! paths, so for a given seed the streamed files `cmp` equal to the
//! in-memory exporter's at any harness thread count or shard count.
//!
//! **Error model:** the engine calls the sink from its event loop, where
//! a per-record `io::Result` has nowhere to go — the first I/O error is
//! latched, further writes become no-ops, and [`JsonlSink::take_error`]
//! surfaces it at flush/finish time.

use crate::export::{metrics_jsonl, write_span_line, Manifest};
use crate::Obs;
use std::fmt;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Default reusable-buffer capacity: large enough to amortise syscalls,
/// small enough to be irrelevant next to the simulator's own state.
pub const DEFAULT_BUF_CAP: usize = 64 * 1024;

/// A buffered JSONL line writer with a fixed-size reusable buffer and a
/// latched error (see the module docs for the error model).
pub struct JsonlSink {
    out: Box<dyn Write + Send>,
    buf: String,
    cap: usize,
    records: u64,
    bytes: u64,
    error: Option<io::Error>,
}

impl fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonlSink")
            .field("records", &self.records)
            .field("bytes", &self.bytes)
            .field("buffered", &self.buf.len())
            .field("cap", &self.cap)
            .field("error", &self.error)
            .finish_non_exhaustive()
    }
}

impl JsonlSink {
    /// Wraps `out` with a reusable buffer of `cap` bytes (values below
    /// 1 KiB are raised to it — a smaller buffer would flush per record).
    #[must_use]
    pub fn new(out: Box<dyn Write + Send>, cap: usize) -> Self {
        let cap = cap.max(1024);
        JsonlSink {
            out,
            // One record may overshoot the capacity before the flush
            // check runs; the slack keeps that overshoot from growing
            // the allocation.
            buf: String::with_capacity(cap + 512),
            cap,
            records: 0,
            bytes: 0,
            error: None,
        }
    }

    /// Opens `path` for writing (truncating) with the default capacity.
    ///
    /// # Errors
    ///
    /// Any I/O failure creating the file.
    pub fn create(path: &Path) -> io::Result<JsonlSink> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlSink::new(Box::new(file), DEFAULT_BUF_CAP))
    }

    /// Renders one record into the reused buffer via `render` (which
    /// must append exactly one `\n`-terminated line) and flushes the
    /// buffer to the file if it crossed the capacity. After an error is
    /// latched this is a no-op.
    pub fn with_line(&mut self, render: impl FnOnce(&mut String)) {
        if self.error.is_some() {
            return;
        }
        let before = self.buf.len();
        render(&mut self.buf);
        self.records += 1;
        self.bytes += (self.buf.len() - before) as u64;
        if self.buf.len() >= self.cap {
            self.write_out();
        }
    }

    fn write_out(&mut self) {
        if self.buf.is_empty() || self.error.is_some() {
            return;
        }
        if let Err(e) = self.out.write_all(self.buf.as_bytes()) {
            self.error = Some(e);
        }
        self.buf.clear();
    }

    /// Flushes the reusable buffer and the underlying writer. Errors are
    /// latched, not returned — collect them with [`JsonlSink::take_error`].
    pub fn flush(&mut self) {
        self.write_out();
        if self.error.is_none() {
            if let Err(e) = self.out.flush() {
                self.error = Some(e);
            }
        }
    }

    /// Records rendered so far (including any still in the buffer).
    #[must_use]
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Bytes rendered so far (including any still in the buffer).
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Takes the latched I/O error, if any write failed.
    pub fn take_error(&mut self) -> Option<io::Error> {
        self.error.take()
    }
}

/// Summary of a finished streaming export.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Spans streamed into `spans.jsonl`.
    pub spans: u64,
    /// Bytes of `spans.jsonl`.
    pub span_bytes: u64,
}

/// An obs directory opened for incremental, bounded-memory export.
#[derive(Debug)]
pub struct ObsStream {
    dir: PathBuf,
    spans: JsonlSink,
}

impl ObsStream {
    /// Creates `dir` (if needed) and opens `spans.jsonl` for streaming.
    ///
    /// # Errors
    ///
    /// Any I/O failure creating the directory or the file.
    pub fn create(dir: &Path) -> io::Result<ObsStream> {
        std::fs::create_dir_all(dir)?;
        let spans = JsonlSink::create(&dir.join("spans.jsonl"))?;
        Ok(ObsStream {
            dir: dir.to_path_buf(),
            spans,
        })
    }

    /// The directory being written.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Opens `trace.jsonl` in the directory as a streaming sink for the
    /// engine's link-layer trace.
    ///
    /// # Errors
    ///
    /// Any I/O failure creating the file.
    pub fn trace_sink(&self) -> io::Result<JsonlSink> {
        JsonlSink::create(&self.dir.join("trace.jsonl"))
    }

    /// Drains the registry's completed spans into `spans.jsonl`. Called
    /// at round/epoch boundaries so span memory stays bounded by one
    /// round's span count. I/O errors are latched (see module docs).
    pub fn flush_spans(&mut self, obs: &mut Obs) {
        let sink = &mut self.spans;
        for s in obs.drain_spans() {
            sink.with_line(|buf| write_span_line(buf, &s));
        }
        sink.flush();
    }

    /// Writes a whole-file artefact (e.g. `flight.jsonl`,
    /// `profile.jsonl`) into the directory.
    ///
    /// # Errors
    ///
    /// Any I/O failure writing the file.
    pub fn write_artifact(&self, name: &str, text: &str) -> io::Result<()> {
        std::fs::write(self.dir.join(name), text)
    }

    /// Finishes the export: drains any remaining spans, flushes the
    /// sink, then writes `manifest.json` and `metrics.jsonl` (the latter
    /// through the same renderer as the buffered path, so the files are
    /// byte-identical).
    ///
    /// # Errors
    ///
    /// The first latched span-sink error, or any failure writing the two
    /// end-of-run files.
    pub fn finish(mut self, manifest: &Manifest, obs: &mut Obs) -> io::Result<StreamStats> {
        self.flush_spans(obs);
        if let Some(e) = self.spans.take_error() {
            return Err(e);
        }
        std::fs::write(self.dir.join("manifest.json"), manifest.to_json().pretty())?;
        std::fs::write(self.dir.join("metrics.jsonl"), metrics_jsonl(obs))?;
        Ok(StreamStats {
            spans: self.spans.records(),
            span_bytes: self.spans.bytes(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::spans_jsonl;
    use crate::{ObsLevel, SpanSnapshot};
    use std::fmt::Write as _;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("obs-stream-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn filled_obs(spans: u32) -> Obs {
        let mut obs = Obs::new(ObsLevel::Full);
        for i in 0..spans {
            obs.span_start(
                "phase.share_exchange",
                i,
                u64::from(i),
                SpanSnapshot::default(),
            );
            obs.span_end(
                "phase.share_exchange",
                i,
                u64::from(i) + 100,
                SpanSnapshot {
                    messages: u64::from(i),
                    bytes: u64::from(i) * 10,
                    energy_nj: u64::from(i) * 100,
                },
            );
        }
        obs.inc("c");
        obs.observe("h", &[4, 16], 7);
        obs
    }

    #[test]
    fn sink_flushes_on_capacity_and_counts_records() {
        let dir = tempdir("sink");
        let path = dir.join("x.jsonl");
        let mut sink = JsonlSink::new(
            Box::new(std::fs::File::create(&path).expect("create")),
            1024,
        );
        for i in 0..200 {
            sink.with_line(|buf| {
                let _ = writeln!(buf, "{{\"i\":{i},\"pad\":\"{:0>32}\"}}", i);
            });
        }
        sink.flush();
        assert!(sink.take_error().is_none());
        assert_eq!(sink.records(), 200);
        let text = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(text.lines().count(), 200);
        assert_eq!(sink.bytes(), text.len() as u64);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn incremental_drains_match_buffered_export_bytes() {
        // Render the reference from one registry, stream a twin of it in
        // three partial drains — the files must be byte-identical.
        let reference = spans_jsonl(&filled_obs(57));

        let dir = tempdir("drain");
        let mut obs = Obs::new(ObsLevel::Full);
        let mut stream = ObsStream::create(&dir).expect("open stream");
        for chunk in 0..3u32 {
            for i in (chunk * 19)..((chunk + 1) * 19) {
                obs.span_start(
                    "phase.share_exchange",
                    i,
                    u64::from(i),
                    SpanSnapshot::default(),
                );
                obs.span_end(
                    "phase.share_exchange",
                    i,
                    u64::from(i) + 100,
                    SpanSnapshot {
                        messages: u64::from(i),
                        bytes: u64::from(i) * 10,
                        energy_nj: u64::from(i) * 100,
                    },
                );
            }
            stream.flush_spans(&mut obs);
            assert!(obs.spans().is_empty(), "drain leaves nothing behind");
        }
        obs.inc("c");
        obs.observe("h", &[4, 16], 7);
        let manifest = Manifest {
            tool: "test".into(),
            seed: 1,
            threads: 1,
            git_rev: "unknown".into(),
            config: vec![],
        };
        let stats = stream.finish(&manifest, &mut obs).expect("finish");
        assert_eq!(stats.spans, 57);
        assert_eq!(obs.spans_total(), 57);

        let streamed = std::fs::read_to_string(dir.join("spans.jsonl")).expect("spans");
        assert_eq!(streamed, reference, "streamed spans.jsonl diverged");
        let metrics = std::fs::read_to_string(dir.join("metrics.jsonl")).expect("metrics");
        assert_eq!(metrics, crate::export::metrics_jsonl(&filled_obs(57)));
        // The full buffered directory loads back through the reader.
        let run = crate::report::load_dir(&dir).expect("load streamed dir");
        assert_eq!(run.spans.len(), 57);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sink_latches_io_errors() {
        struct Failing;
        impl std::io::Write for Failing {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk gone"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlSink::new(Box::new(Failing), 1024);
        sink.with_line(|buf| buf.push_str("{\"a\":1}\n"));
        sink.flush();
        let err = sink.take_error().expect("error latched");
        assert_eq!(err.to_string(), "disk gone");
        // Further writes are no-ops, not panics.
        sink.with_line(|buf| buf.push_str("{\"b\":2}\n"));
    }
}
