//! # icpda-obs — unified observability for the iCPDA reproduction
//!
//! A zero-cost-when-off span/metrics registry plus a deterministic JSONL
//! exporter and report renderer. The simulator engine (`wsn-sim`) and the
//! protocol layer (`icpda-core`) record into an [`Obs`] registry; the CLI
//! and bench harness export it as an *obs directory*:
//!
//! * `manifest.json` — run configuration, seed, git revision, thread count
//!   and a [`export::OBS_SCHEMA_VERSION`] stamp,
//! * `spans.jsonl` — one line per completed [`Span`] (protocol phases and
//!   engine episodes), with sim-time duration and message/byte/energy
//!   deltas,
//! * `metrics.jsonl` — one line per counter, gauge and histogram.
//!
//! ## Cost model
//!
//! The registry is guarded exactly like `wsn_sim::TraceLevel`: every
//! recording site checks [`Obs::wants`] *before* computing a snapshot or
//! constructing any argument, so at [`ObsLevel::Off`] (the default) an
//! instrumentation point costs one branch and zero allocations. The
//! registry itself allocates nothing at construction — empty `BTreeMap`s
//! and `Vec`s have no heap footprint — so an `Off` registry is free.
//!
//! ## Determinism
//!
//! Everything is keyed by `&'static str` names in `BTreeMap`s (stable
//! iteration order) and spans are stored in completion order of the
//! single-threaded simulator, so exported `spans.jsonl`/`metrics.jsonl`
//! are byte-identical for a given seed at any harness thread count. Only
//! `manifest.json` records environment facts (threads, git revision).

#![forbid(unsafe_code)]

pub mod export;
pub mod json;
pub mod profile;
pub mod redact;
pub mod report;
pub mod stream;

use std::collections::BTreeMap;

/// How much the observability layer records. Mirrors
/// `wsn_sim::TraceLevel`: recording sites guard with [`Obs::wants`] so
/// below the required level an instrumentation point is one branch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum ObsLevel {
    /// Record nothing (the default; zero cost beyond one branch per
    /// instrumentation point).
    #[default]
    Off,
    /// Record protocol-phase spans and protocol counters/gauges.
    Phases,
    /// Additionally record engine internals: delivery-batch histograms,
    /// MAC-drop and timer-churn counters, fault-transition spans.
    Full,
}

impl ObsLevel {
    /// Parses the CLI spelling of a level (`off`/`phases`/`full`).
    ///
    /// # Errors
    ///
    /// Names the accepted spellings on anything else.
    pub fn parse(s: &str) -> Result<ObsLevel, String> {
        match s {
            "off" => Ok(ObsLevel::Off),
            "phases" => Ok(ObsLevel::Phases),
            "full" => Ok(ObsLevel::Full),
            other => Err(format!("expected off|phases|full, got '{other}'")),
        }
    }
}

/// A point-in-time accounting snapshot for one node, taken at span start
/// and end; the span records the (saturating) deltas.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Frames sent + received + overheard by the node so far.
    pub messages: u64,
    /// Bytes sent + received by the node so far.
    pub bytes: u64,
    /// Total energy spent by the node so far, in nanojoules.
    pub energy_nj: u64,
}

impl SpanSnapshot {
    fn delta(self, since: SpanSnapshot) -> SpanSnapshot {
        SpanSnapshot {
            messages: self.messages.saturating_sub(since.messages),
            bytes: self.bytes.saturating_sub(since.bytes),
            energy_nj: self.energy_nj.saturating_sub(since.energy_nj),
        }
    }
}

/// One completed span: a named interval of simulated time on one node,
/// with the message/byte/energy deltas accrued inside it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Static span name, e.g. `phase.cluster_formation`.
    pub name: &'static str,
    /// The node the span belongs to.
    pub node: u32,
    /// Span start, in sim-time nanoseconds.
    pub start_ns: u64,
    /// Span end, in sim-time nanoseconds.
    pub end_ns: u64,
    /// Frames handled by the node during the span.
    pub messages: u64,
    /// Bytes sent/received by the node during the span.
    pub bytes: u64,
    /// Energy spent by the node during the span, in nanojoules.
    pub energy_nj: u64,
}

impl Span {
    /// Span duration in sim-time nanoseconds.
    #[must_use]
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// A fixed-bucket histogram. Bucket upper bounds are a static slice
/// supplied at the recording site; values above the last bound land in
/// an implicit overflow bucket.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    bounds: &'static [u64],
    counts: Vec<u64>,
    total: u64,
    sum: u64,
}

impl Histogram {
    fn new(bounds: &'static [u64]) -> Self {
        Histogram {
            bounds,
            counts: vec![0; bounds.len() + 1],
            total: 0,
            sum: 0,
        }
    }

    fn observe(&mut self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|b| value <= *b)
            .unwrap_or(self.bounds.len());
        if let Some(slot) = self.counts.get_mut(idx) {
            *slot += 1;
        }
        self.total += 1;
        self.sum += value;
    }

    /// Bucket upper bounds (the overflow bucket is implicit).
    #[must_use]
    pub fn bounds(&self) -> &'static [u64] {
        self.bounds
    }

    /// Per-bucket counts; one longer than [`Self::bounds`] (the last
    /// entry is the overflow bucket).
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sum of all observed values.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) from the bucket counts
    /// by linear interpolation inside the containing bucket. Values in
    /// the overflow bucket are attributed to the last bound (a lower
    /// bound on the true quantile). Returns 0 for an empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        quantile_from_buckets(self.bounds, &self.counts, self.total, q)
    }
}

/// Shared quantile estimator over exported bucket data, so the live
/// [`Histogram`] and the `metrics.jsonl` reader (`report::MetricRow`)
/// agree to the bit. `counts` is one longer than `bounds` (overflow
/// last); `total` is the observation count.
#[must_use]
pub fn quantile_from_buckets(bounds: &[u64], counts: &[u64], total: u64, q: f64) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
    let mut cum = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let before = cum;
        cum += c;
        if cum >= rank {
            let lower = if i == 0 { 0 } else { bounds[i - 1] };
            return match bounds.get(i) {
                Some(&upper) => {
                    let frac = (rank - before) as f64 / c as f64;
                    lower as f64 + (upper as f64 - lower as f64) * frac
                }
                // Overflow bucket: unbounded above, report its floor.
                None => bounds.last().copied().unwrap_or(0) as f64,
            };
        }
    }
    bounds.last().copied().unwrap_or(0) as f64
}

/// The span/metrics registry. See the crate docs for the cost model.
#[derive(Clone, Debug, Default)]
pub struct Obs {
    level: ObsLevel,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, i64>,
    hists: BTreeMap<&'static str, Histogram>,
    spans: Vec<Span>,
    open: BTreeMap<(&'static str, u32), (u64, SpanSnapshot)>,
    /// Spans already handed to a streaming exporter via
    /// [`Obs::drain_spans`]; `spans_total` still reports them.
    drained: u64,
}

impl Obs {
    /// Creates a registry at `level`. Allocates nothing — an `Off`
    /// registry is free to construct and carry.
    #[must_use]
    pub fn new(level: ObsLevel) -> Self {
        Obs {
            level,
            ..Obs::default()
        }
    }

    /// A disabled registry (same as `Obs::default()`).
    #[must_use]
    pub fn off() -> Self {
        Obs::default()
    }

    /// The configured level.
    #[must_use]
    pub fn level(&self) -> ObsLevel {
        self.level
    }

    /// Whether anything is recorded at all.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.level > ObsLevel::Off
    }

    /// Whether events of class `level` have a consumer attached.
    /// Recording sites guard with this *before* computing snapshots so a
    /// disabled site costs one branch.
    #[must_use]
    pub fn wants(&self, level: ObsLevel) -> bool {
        self.level >= level
    }

    /// Increments counter `name` by one.
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Adds `delta` to counter `name`.
    pub fn add(&mut self, name: &'static str, delta: u64) {
        if self.level == ObsLevel::Off {
            return;
        }
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Sets gauge `name` to `value` (last write wins).
    pub fn gauge_set(&mut self, name: &'static str, value: i64) {
        if self.level == ObsLevel::Off {
            return;
        }
        self.gauges.insert(name, value);
    }

    /// Records `value` into the fixed-bucket histogram `name`. The
    /// bounds of the first call stick; later calls reuse them.
    pub fn observe(&mut self, name: &'static str, bounds: &'static [u64], value: u64) {
        if self.level == ObsLevel::Off {
            return;
        }
        self.hists
            .entry(name)
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// Opens span `(name, node)` at `now_ns` with accounting snapshot
    /// `at`. If the span is already open this is a no-op (the first
    /// opening wins), keeping re-entrant protocol handlers simple.
    pub fn span_start(&mut self, name: &'static str, node: u32, now_ns: u64, at: SpanSnapshot) {
        if self.level == ObsLevel::Off {
            return;
        }
        self.open.entry((name, node)).or_insert((now_ns, at));
    }

    /// Closes span `(name, node)` at `now_ns`, recording the deltas
    /// against the opening snapshot. A no-op if the span is not open.
    pub fn span_end(&mut self, name: &'static str, node: u32, now_ns: u64, at: SpanSnapshot) {
        if self.level == ObsLevel::Off {
            return;
        }
        if let Some((start_ns, since)) = self.open.remove(&(name, node)) {
            let d = at.delta(since);
            self.spans.push(Span {
                name,
                node,
                start_ns,
                end_ns: now_ns.max(start_ns),
                messages: d.messages,
                bytes: d.bytes,
                energy_nj: d.energy_nj,
            });
        }
    }

    /// Whether span `(name, node)` is currently open.
    #[must_use]
    pub fn span_open(&self, name: &'static str, node: u32) -> bool {
        self.open.contains_key(&(name, node))
    }

    /// Closes every still-open span at `now_ns` with zero deltas (the
    /// per-node end snapshots are no longer available). Call once when a
    /// run ends so truncated episodes (e.g. a crash-stop outage) still
    /// export their duration.
    pub fn finish(&mut self, now_ns: u64) {
        if self.level == ObsLevel::Off {
            return;
        }
        // BTreeMap order keys the drain, so the tail of `spans` is
        // deterministic too.
        let open = std::mem::take(&mut self.open);
        for ((name, node), (start_ns, _)) in open {
            self.spans.push(Span {
                name,
                node,
                start_ns,
                end_ns: now_ns.max(start_ns),
                messages: 0,
                bytes: 0,
                energy_nj: 0,
            });
        }
    }

    /// Counter `name`, zero if never incremented.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, i64)> + '_ {
        self.gauges.iter().map(|(k, v)| (*k, *v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.hists.iter().map(|(k, v)| (*k, v))
    }

    /// Completed spans, in completion order.
    ///
    /// After a streaming export drained the registry this only holds the
    /// not-yet-drained tail; see [`Obs::spans_total`] for the full count.
    #[must_use]
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Drains the completed spans for incremental export, keeping count.
    /// The order of the drained items is completion order — exactly the
    /// order [`export::spans_jsonl`] would have rendered them in — so a
    /// streaming writer that consumes every drain produces byte-identical
    /// `spans.jsonl` output to the buffered path.
    pub fn drain_spans(&mut self) -> std::vec::Drain<'_, Span> {
        self.drained += self.spans.len() as u64;
        self.spans.drain(..)
    }

    /// Spans handed to a streaming exporter so far.
    #[must_use]
    pub fn spans_drained(&self) -> u64 {
        self.drained
    }

    /// Total completed spans: drained plus still retained.
    #[must_use]
    pub fn spans_total(&self) -> u64 {
        self.drained + self.spans.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(messages: u64, bytes: u64, energy_nj: u64) -> SpanSnapshot {
        SpanSnapshot {
            messages,
            bytes,
            energy_nj,
        }
    }

    #[test]
    fn off_registry_records_nothing_and_allocates_nothing() {
        let mut obs = Obs::off();
        assert!(!obs.enabled());
        assert!(!obs.wants(ObsLevel::Phases));
        obs.inc("c");
        obs.gauge_set("g", 3);
        obs.observe("h", &[1, 2], 1);
        obs.span_start("s", 1, 10, snap(0, 0, 0));
        obs.span_end("s", 1, 20, snap(1, 1, 1));
        obs.finish(30);
        assert_eq!(obs.counters().count(), 0);
        assert_eq!(obs.gauges().count(), 0);
        assert_eq!(obs.histograms().count(), 0);
        assert!(obs.spans().is_empty());
        // No backing storage was ever grown.
        assert_eq!(obs.spans.capacity(), 0);
    }

    #[test]
    fn levels_order_like_trace_levels() {
        let phases = Obs::new(ObsLevel::Phases);
        assert!(phases.wants(ObsLevel::Phases));
        assert!(!phases.wants(ObsLevel::Full));
        let full = Obs::new(ObsLevel::Full);
        assert!(full.wants(ObsLevel::Phases));
        assert!(full.wants(ObsLevel::Full));
        assert_eq!(ObsLevel::default(), ObsLevel::Off);
    }

    #[test]
    fn counters_gauges_histograms_accumulate() {
        let mut obs = Obs::new(ObsLevel::Full);
        obs.inc("a");
        obs.add("a", 4);
        obs.gauge_set("g", -2);
        obs.gauge_set("g", 7);
        obs.observe("h", &[1, 4, 16], 0);
        obs.observe("h", &[1, 4, 16], 4);
        obs.observe("h", &[1, 4, 16], 100);
        assert_eq!(obs.counter("a"), 5);
        assert_eq!(obs.counter("missing"), 0);
        assert_eq!(obs.gauges().collect::<Vec<_>>(), vec![("g", 7)]);
        let (_, h) = obs.histograms().next().expect("histogram");
        assert_eq!(h.counts(), &[1, 1, 0, 1]);
        assert_eq!(h.total(), 3);
        assert_eq!(h.sum(), 104);
    }

    #[test]
    fn span_lifecycle_records_deltas() {
        let mut obs = Obs::new(ObsLevel::Phases);
        obs.span_start("phase.x", 3, 100, snap(10, 500, 9_000));
        assert!(obs.span_open("phase.x", 3));
        // Re-opening is a no-op: the first start wins.
        obs.span_start("phase.x", 3, 999, snap(99, 999, 99_999));
        obs.span_end("phase.x", 3, 400, snap(14, 900, 12_500));
        assert!(!obs.span_open("phase.x", 3));
        assert_eq!(
            obs.spans(),
            &[Span {
                name: "phase.x",
                node: 3,
                start_ns: 100,
                end_ns: 400,
                messages: 4,
                bytes: 400,
                energy_nj: 3_500,
            }]
        );
        assert_eq!(obs.spans()[0].duration_ns(), 300);
        // Ending a span that is not open is a no-op.
        obs.span_end("phase.x", 3, 500, snap(0, 0, 0));
        assert_eq!(obs.spans().len(), 1);
    }

    #[test]
    fn finish_closes_open_spans_with_zero_deltas() {
        let mut obs = Obs::new(ObsLevel::Phases);
        obs.span_start("engine.outage", 5, 50, snap(1, 2, 3));
        obs.finish(80);
        assert_eq!(obs.spans().len(), 1);
        let s = obs.spans()[0];
        assert_eq!((s.start_ns, s.end_ns), (50, 80));
        assert_eq!((s.messages, s.bytes, s.energy_nj), (0, 0, 0));
        assert!(!obs.span_open("engine.outage", 5));
    }
}
