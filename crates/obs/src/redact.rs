//! Sanctioned redaction boundary for secret-typed data (XL007).
//!
//! The static gate (`xlint` rule XL007) forbids any flow from a secret
//! type — link keys, key-pool seeds, slice-share vectors — into an
//! operator-visible sink: traces, obs exports, format strings, results
//! artifacts. When a diagnostic *needs* to mention a secret, it must go
//! through this module: these are the only functions registered under
//! `[secrets].redact` in `xlint.toml`, and values derived through them
//! stop being tainted.
//!
//! Nothing here preserves enough information to reconstruct the input:
//! [`redacted`] is a constant placeholder and [`fingerprint`] keeps eight
//! bits — enough to tell two keys apart in a log with 1/256 collision
//! odds, useless for key recovery.

/// The fixed placeholder every redacted secret renders as.
#[must_use]
pub fn redacted() -> &'static str {
    "<redacted>"
}

/// An 8-bit tag of a secret value for correlating log lines.
///
/// Keeps only the lowest byte after a xor-fold of all eight: two log
/// lines with equal fingerprints *probably* refer to the same key, and
/// nothing more can be learned from it.
#[must_use]
pub fn fingerprint(v: u64) -> String {
    let folded = (v ^ (v >> 32) ^ (v >> 16) ^ (v >> 8)) as u8;
    format!("#{folded:02x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_short_and_stable() {
        assert_eq!(fingerprint(0), "#00");
        assert_eq!(fingerprint(42), fingerprint(42));
        assert_eq!(fingerprint(u64::MAX).len(), 3);
    }

    #[test]
    fn redacted_is_constant() {
        assert_eq!(redacted(), "<redacted>");
    }
}
