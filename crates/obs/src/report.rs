//! Reads an obs directory back and renders human reports: a per-phase
//! table (latency, messages, energy, coverage) and a two-run diff with
//! `::warning::`-style deltas (same soft-gate idiom as the bench
//! harness).

use crate::export::Manifest;
use crate::json::{self, Json};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::path::Path;

/// One span line read back from `spans.jsonl`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRow {
    /// Span name, e.g. `phase.share_exchange`.
    pub name: String,
    /// Owning node.
    pub node: u32,
    /// Start, sim-time nanoseconds.
    pub start_ns: u64,
    /// End, sim-time nanoseconds.
    pub end_ns: u64,
    /// Frames handled during the span.
    pub messages: u64,
    /// Bytes moved during the span.
    pub bytes: u64,
    /// Energy spent during the span, nanojoules.
    pub energy_nj: u64,
}

/// One metric line read back from `metrics.jsonl`.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricRow {
    /// A monotonic counter.
    Counter {
        /// Metric name.
        name: String,
        /// Final value.
        value: u64,
    },
    /// A last-write-wins gauge.
    Gauge {
        /// Metric name.
        name: String,
        /// Final value.
        value: i64,
    },
    /// A fixed-bucket histogram.
    Histogram {
        /// Metric name.
        name: String,
        /// Bucket upper bounds.
        bounds: Vec<u64>,
        /// Per-bucket counts (one longer than `bounds`).
        counts: Vec<u64>,
        /// Observation count.
        total: u64,
        /// Sum of observed values.
        sum: u64,
    },
}

/// A fully loaded obs directory.
#[derive(Clone, Debug, PartialEq)]
pub struct ObsRun {
    /// The run manifest.
    pub manifest: Manifest,
    /// All spans, in file order.
    pub spans: Vec<SpanRow>,
    /// All metrics, in file order.
    pub metrics: Vec<MetricRow>,
}

/// Loads and validates an obs directory.
///
/// # Errors
///
/// Describes the offending file and line on malformed or
/// version-incompatible input; never panics.
pub fn load_dir(dir: &Path) -> Result<ObsRun, String> {
    let read = |name: &str| {
        let path = dir.join(name);
        std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))
    };
    let manifest_doc = json::parse(&read("manifest.json")?)
        .map_err(|e| format!("{}: {e}", dir.join("manifest.json").display()))?;
    let manifest = Manifest::from_json(&manifest_doc)?;
    let spans = parse_lines(&read("spans.jsonl")?, "spans.jsonl", parse_span)?;
    let metrics = parse_lines(&read("metrics.jsonl")?, "metrics.jsonl", parse_metric)?;
    Ok(ObsRun {
        manifest,
        spans,
        metrics,
    })
}

fn parse_lines<T>(
    text: &str,
    what: &str,
    parse_one: impl Fn(&Json) -> Result<T, String>,
) -> Result<Vec<T>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = json::parse(line).map_err(|e| format!("{what} line {}: {e}", i + 1))?;
        out.push(parse_one(&doc).map_err(|e| format!("{what} line {}: {e}", i + 1))?);
    }
    Ok(out)
}

fn field_u64(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_f64)
        .map(|v| v as u64)
        .ok_or_else(|| format!("missing numeric field `{key}`"))
}

fn field_str(doc: &Json, key: &str) -> Result<String, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field `{key}`"))
}

fn parse_span(doc: &Json) -> Result<SpanRow, String> {
    Ok(SpanRow {
        name: field_str(doc, "name")?,
        node: field_u64(doc, "node")? as u32,
        start_ns: field_u64(doc, "start_ns")?,
        end_ns: field_u64(doc, "end_ns")?,
        messages: field_u64(doc, "messages")?,
        bytes: field_u64(doc, "bytes")?,
        energy_nj: field_u64(doc, "energy_nj")?,
    })
}

fn parse_metric(doc: &Json) -> Result<MetricRow, String> {
    let arr_u64 = |key: &str| -> Result<Vec<u64>, String> {
        doc.get(key)
            .and_then(Json::as_arr)
            .map(|a| {
                a.iter()
                    .filter_map(Json::as_f64)
                    .map(|v| v as u64)
                    .collect()
            })
            .ok_or_else(|| format!("missing array field `{key}`"))
    };
    match field_str(doc, "kind")?.as_str() {
        "counter" => Ok(MetricRow::Counter {
            name: field_str(doc, "name")?,
            value: field_u64(doc, "value")?,
        }),
        "gauge" => Ok(MetricRow::Gauge {
            name: field_str(doc, "name")?,
            value: doc
                .get("value")
                .and_then(Json::as_f64)
                .ok_or("missing numeric field `value`")? as i64,
        }),
        "histogram" => Ok(MetricRow::Histogram {
            name: field_str(doc, "name")?,
            bounds: arr_u64("bounds")?,
            counts: arr_u64("counts")?,
            total: field_u64(doc, "total")?,
            sum: field_u64(doc, "sum")?,
        }),
        other => Err(format!("unknown metric kind `{other}`")),
    }
}

/// Aggregate statistics for one span name.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PhaseStats {
    /// Number of spans.
    pub spans: u64,
    /// Distinct nodes covered.
    pub nodes: u64,
    /// Mean span duration, milliseconds of sim time.
    pub mean_ms: f64,
    /// Max span duration, milliseconds of sim time.
    pub max_ms: f64,
    /// Total frames handled inside the spans.
    pub messages: u64,
    /// Total bytes moved inside the spans.
    pub bytes: u64,
    /// Total energy inside the spans, millijoules.
    pub energy_mj: f64,
}

/// Groups a run's spans by name.
#[must_use]
pub fn phase_stats(run: &ObsRun) -> BTreeMap<String, PhaseStats> {
    let mut nodes: BTreeMap<&str, BTreeSet<u32>> = BTreeMap::new();
    let mut sums: BTreeMap<&str, (u64, f64, f64, u64, u64, u64)> = BTreeMap::new();
    for s in &run.spans {
        nodes.entry(&s.name).or_default().insert(s.node);
        let e = sums.entry(&s.name).or_default();
        let dur_ms = s.end_ns.saturating_sub(s.start_ns) as f64 / 1e6;
        e.0 += 1;
        e.1 += dur_ms;
        e.2 = e.2.max(dur_ms);
        e.3 += s.messages;
        e.4 += s.bytes;
        e.5 += s.energy_nj;
    }
    sums.into_iter()
        .map(
            |(name, (n, dur_sum, dur_max, messages, bytes, energy_nj))| {
                (
                    name.to_string(),
                    PhaseStats {
                        spans: n,
                        nodes: nodes.get(name).map_or(0, |s| s.len() as u64),
                        mean_ms: if n > 0 { dur_sum / n as f64 } else { 0.0 },
                        max_ms: dur_max,
                        messages,
                        bytes,
                        energy_mj: energy_nj as f64 / 1e6,
                    },
                )
            },
        )
        .collect()
}

fn total_nodes(run: &ObsRun) -> Option<u64> {
    run.manifest
        .config
        .iter()
        .find(|(k, _)| k == "nodes")
        .and_then(|(_, v)| v.parse::<u64>().ok())
}

/// Renders the per-phase report for one run.
#[must_use]
pub fn render_report(run: &ObsRun) -> String {
    let mut out = String::new();
    let m = &run.manifest;
    let _ = writeln!(
        out,
        "obs report — tool `{}`, seed {}, threads {}, rev {}",
        m.tool, m.seed, m.threads, m.git_rev
    );
    let config: Vec<String> = m.config.iter().map(|(k, v)| format!("{k}={v}")).collect();
    let _ = writeln!(out, "config: {}", config.join(" "));
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:<26} {:>6} {:>9} {:>10} {:>10} {:>9} {:>11} {:>11}",
        "span", "count", "nodes", "mean ms", "max ms", "msgs", "bytes", "energy mJ"
    );
    let total = total_nodes(run);
    for (name, st) in phase_stats(run) {
        let nodes = match total {
            // Coverage only makes sense for protocol phases, which at
            // most cover every deployed node once.
            Some(t) if t > 0 && st.nodes <= t => {
                format!("{}/{t}", st.nodes)
            }
            _ => format!("{}", st.nodes),
        };
        let _ = writeln!(
            out,
            "{:<26} {:>6} {:>9} {:>10.2} {:>10.2} {:>9} {:>11} {:>11.3}",
            name, st.spans, nodes, st.mean_ms, st.max_ms, st.messages, st.bytes, st.energy_mj
        );
    }
    if let Some(table) = render_loss_breakdown(run) {
        let _ = writeln!(out);
        out.push_str(&table);
    }
    let counters: Vec<(&String, &u64)> = run
        .metrics
        .iter()
        .filter_map(|m| match m {
            MetricRow::Counter { name, value } => Some((name, value)),
            _ => None,
        })
        .collect();
    if !counters.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(out, "{:<40} {:>12}", "counter", "value");
        for (name, value) in counters {
            let _ = writeln!(out, "{name:<40} {value:>12}");
        }
    }
    for m in &run.metrics {
        if let MetricRow::Gauge { name, value } = m {
            let _ = writeln!(out, "{name:<40} {value:>12}  (gauge)");
        }
    }
    let hists: Vec<&MetricRow> = run
        .metrics
        .iter()
        .filter(|m| matches!(m, MetricRow::Histogram { .. }))
        .collect();
    if !hists.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{:<40} {:>10} {:>9} {:>9} {:>9} {:>9}",
            "histogram", "total", "mean", "p50", "p95", "p99"
        );
        for m in hists {
            if let MetricRow::Histogram {
                name,
                bounds,
                counts,
                total,
                sum,
            } = m
            {
                let mean = if *total > 0 {
                    *sum as f64 / *total as f64
                } else {
                    0.0
                };
                let q = |q: f64| crate::quantile_from_buckets(bounds, counts, *total, q);
                let _ = writeln!(
                    out,
                    "{name:<40} {total:>10} {mean:>9.2} {:>9.2} {:>9.2} {:>9.2}",
                    q(0.50),
                    q(0.95),
                    q(0.99)
                );
            }
        }
    }
    out
}

/// Extracts `(p50, p95, p99)` estimates for every histogram of a run, by
/// name. Quantiles come from [`crate::quantile_from_buckets`], the same
/// estimator the live [`crate::Histogram`] uses, so a report over an
/// exported directory agrees with in-process numbers to the bit.
#[must_use]
pub fn histogram_quantiles(run: &ObsRun) -> BTreeMap<String, (f64, f64, f64)> {
    run.metrics
        .iter()
        .filter_map(|m| match m {
            MetricRow::Histogram {
                name,
                bounds,
                counts,
                total,
                ..
            } => {
                let q = |q: f64| crate::quantile_from_buckets(bounds, counts, *total, q);
                Some((name.clone(), (q(0.50), q(0.95), q(0.99))))
            }
            _ => None,
        })
        .collect()
}

/// The `sim_lost_*` counters the runner folds in, with display labels,
/// in severity-of-surprise order (channel causes last).
const LOSS_CAUSES: [(&str, &str); 6] = [
    ("sim_lost_collision", "Collision"),
    ("sim_lost_half_duplex", "HalfDuplex"),
    ("sim_lost_mac_drop", "MacDrop"),
    ("sim_lost_receiver_down", "ReceiverDown"),
    ("sim_lost_stochastic", "Stochastic"),
    ("sim_lost_corrupt", "Corrupt"),
];

/// Renders the loss-cause breakdown table, or `None` for runs captured
/// before the simulator exported per-cause loss counters.
fn render_loss_breakdown(run: &ObsRun) -> Option<String> {
    let lookup = |key: &str| {
        run.metrics.iter().find_map(|m| match m {
            MetricRow::Counter { name, value } if name == key => Some(*value),
            _ => None,
        })
    };
    let causes: Vec<(&str, u64)> = LOSS_CAUSES
        .iter()
        .filter_map(|&(key, label)| lookup(key).map(|v| (label, v)))
        .collect();
    if causes.is_empty() {
        return None;
    }
    let total: u64 = causes.iter().map(|(_, v)| v).sum();
    let mut out = String::new();
    let _ = writeln!(out, "{:<20} {:>12} {:>8}", "loss cause", "frames", "share");
    for (label, value) in &causes {
        let share = if total > 0 {
            *value as f64 / total as f64 * 100.0
        } else {
            0.0
        };
        let _ = writeln!(out, "{label:<20} {value:>12} {share:>7.1}%");
    }
    let _ = writeln!(out, "{:<20} {:>12} {:>8}", "total lost", total, "");
    Some(out)
}

fn pct(before: f64, after: f64) -> Option<f64> {
    if before == 0.0 {
        if after == 0.0 {
            Some(0.0)
        } else {
            None // born from zero: no meaningful percentage
        }
    } else {
        Some((after - before) / before * 100.0)
    }
}

/// Diffs two runs phase-by-phase. Returns the rendered diff table and a
/// list of `::warning::`-ready strings for deltas whose magnitude
/// exceeds `warn_pct` percent.
#[must_use]
pub fn render_diff(a: &ObsRun, b: &ObsRun, warn_pct: f64) -> (String, Vec<String>) {
    let mut out = String::new();
    let mut warnings = Vec::new();
    let sa = phase_stats(a);
    let sb = phase_stats(b);
    let _ = writeln!(
        out,
        "obs diff — A: seed {} rev {}  |  B: seed {} rev {}",
        a.manifest.seed, a.manifest.git_rev, b.manifest.seed, b.manifest.git_rev
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:<26} {:>22} {:>22} {:>22}",
        "span", "mean ms (A→B)", "msgs (A→B)", "energy mJ (A→B)"
    );
    let names: BTreeSet<&String> = sa.keys().chain(sb.keys()).collect();
    let default = PhaseStats::default();
    for name in names {
        let (pa, pb) = (
            sa.get(name).unwrap_or(&default),
            sb.get(name).unwrap_or(&default),
        );
        let cell = |before: f64, after: f64, decimals: usize| match pct(before, after) {
            Some(p) => format!("{before:.decimals$}→{after:.decimals$} ({p:+.1}%)"),
            None => format!("{before:.decimals$}→{after:.decimals$} (new)"),
        };
        let _ = writeln!(
            out,
            "{:<26} {:>22} {:>22} {:>22}",
            name,
            cell(pa.mean_ms, pb.mean_ms, 2),
            cell(pa.messages as f64, pb.messages as f64, 0),
            cell(pa.energy_mj, pb.energy_mj, 3),
        );
        let checks = [
            ("mean span ms", pa.mean_ms, pb.mean_ms),
            ("messages", pa.messages as f64, pb.messages as f64),
            ("bytes", pa.bytes as f64, pb.bytes as f64),
            ("energy", pa.energy_mj, pb.energy_mj),
            ("node coverage", pa.nodes as f64, pb.nodes as f64),
        ];
        for (what, before, after) in checks {
            let exceeded = match pct(before, after) {
                Some(p) => p.abs() > warn_pct,
                None => true, // appeared out of nothing: always notable
            };
            if exceeded {
                warnings.push(format!(
                    "obs diff: {name} {what} changed {before:.2} -> {after:.2} \
                     (threshold {warn_pct}%)"
                ));
            }
        }
    }
    let (qa, qb) = (histogram_quantiles(a), histogram_quantiles(b));
    let hist_names: BTreeSet<&String> = qa.keys().chain(qb.keys()).collect();
    if !hist_names.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{:<40} {:>22} {:>22}",
            "histogram", "p95 (A→B)", "p99 (A→B)"
        );
        for name in hist_names {
            let (_, p95a, p99a) = qa.get(name).copied().unwrap_or_default();
            let (_, p95b, p99b) = qb.get(name).copied().unwrap_or_default();
            let cell = |before: f64, after: f64| match pct(before, after) {
                Some(p) => format!("{before:.2}→{after:.2} ({p:+.1}%)"),
                None => format!("{before:.2}→{after:.2} (new)"),
            };
            let _ = writeln!(
                out,
                "{:<40} {:>22} {:>22}",
                name,
                cell(p95a, p95b),
                cell(p99a, p99b)
            );
            // Tail-latency gate: only *regressions* (p99 moving up) warn —
            // an improvement should never fail a soft gate.
            let regressed = match pct(p99a, p99b) {
                Some(p) => p > warn_pct,
                None => true, // histogram appeared with a nonzero tail
            };
            if regressed {
                warnings.push(format!(
                    "obs diff: {name} p99 regressed {p99a:.2} -> {p99b:.2} \
                     (threshold {warn_pct}%)"
                ));
            }
        }
    }
    (out, warnings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::{write_dir, Manifest};
    use crate::{Obs, ObsLevel, SpanSnapshot};

    fn run_with(messages: u64) -> ObsRun {
        ObsRun {
            manifest: Manifest {
                tool: "test".into(),
                seed: 1,
                threads: 1,
                git_rev: "deadbee".into(),
                config: vec![("nodes".into(), "4".into())],
            },
            spans: vec![
                SpanRow {
                    name: "phase.aggregation".into(),
                    node: 1,
                    start_ns: 0,
                    end_ns: 2_000_000,
                    messages,
                    bytes: 100,
                    energy_nj: 1_000_000,
                },
                SpanRow {
                    name: "phase.aggregation".into(),
                    node: 2,
                    start_ns: 0,
                    end_ns: 4_000_000,
                    messages: 2,
                    bytes: 60,
                    energy_nj: 500_000,
                },
            ],
            metrics: vec![MetricRow::Counter {
                name: "icpda_solved".into(),
                value: 2,
            }],
        }
    }

    #[test]
    fn phase_stats_aggregate_per_name() {
        let stats = phase_stats(&run_with(4));
        let st = stats.get("phase.aggregation").expect("phase present");
        assert_eq!(st.spans, 2);
        assert_eq!(st.nodes, 2);
        assert_eq!(st.messages, 6);
        assert!((st.mean_ms - 3.0).abs() < 1e-9);
        assert!((st.max_ms - 4.0).abs() < 1e-9);
        assert!((st.energy_mj - 1.5).abs() < 1e-9);
    }

    #[test]
    fn report_renders_coverage_and_counters() {
        let text = render_report(&run_with(4));
        assert!(text.contains("phase.aggregation"), "{text}");
        assert!(text.contains("2/4"), "coverage cell missing:\n{text}");
        assert!(text.contains("icpda_solved"), "{text}");
        // No sim_lost_* counters captured: the breakdown is omitted, not
        // rendered as a table of zeros.
        assert!(!text.contains("loss cause"), "{text}");
    }

    #[test]
    fn report_renders_loss_cause_breakdown() {
        let mut run = run_with(4);
        run.metrics.extend([
            MetricRow::Counter {
                name: "sim_lost_collision".into(),
                value: 30,
            },
            MetricRow::Counter {
                name: "sim_lost_stochastic".into(),
                value: 60,
            },
            MetricRow::Counter {
                name: "sim_lost_corrupt".into(),
                value: 10,
            },
        ]);
        let text = render_report(&run);
        assert!(text.contains("loss cause"), "{text}");
        assert!(text.contains("Collision"), "{text}");
        assert!(text.contains("Corrupt"), "{text}");
        assert!(text.contains("60.0%"), "stochastic share missing:\n{text}");
        assert!(text.contains("total lost"), "{text}");
        assert!(text.contains("100"), "{text}");
    }

    #[test]
    fn diff_warns_beyond_threshold_only() {
        let (text, warnings) = render_diff(&run_with(4), &run_with(4), 10.0);
        assert!(text.contains("+0.0%"), "{text}");
        assert!(warnings.is_empty(), "{warnings:?}");
        let (_, warnings) = render_diff(&run_with(4), &run_with(40), 10.0);
        assert!(
            warnings.iter().any(|w| w.contains("messages")),
            "{warnings:?}"
        );
    }

    fn with_hist(mut run: ObsRun, counts: [u64; 3]) -> ObsRun {
        let total = counts.iter().sum();
        run.metrics.push(MetricRow::Histogram {
            name: "engine.batch_receivers".into(),
            bounds: vec![2, 8],
            counts: counts.to_vec(),
            total,
            sum: 0,
        });
        run
    }

    #[test]
    fn report_renders_quantile_columns() {
        let run = with_hist(run_with(4), [90, 9, 1]);
        let text = render_report(&run);
        assert!(text.contains("p50"), "{text}");
        assert!(text.contains("p99"), "{text}");
        assert!(text.contains("engine.batch_receivers"), "{text}");
        let q = histogram_quantiles(&run);
        let (p50, p95, p99) = q["engine.batch_receivers"];
        assert!(p50 <= 2.0, "p50 in first bucket, got {p50}");
        assert!(p95 > 2.0 && p95 <= 8.0, "p95 in second bucket, got {p95}");
        assert!(
            (p99 - 8.0).abs() < 1e-9 || p99 > 8.0,
            "p99 at tail, got {p99}"
        );
    }

    #[test]
    fn diff_warns_on_p99_regression_but_not_improvement() {
        let tight = with_hist(run_with(4), [99, 1, 0]);
        let heavy = with_hist(run_with(4), [50, 20, 30]);
        // Self-diff must stay warning-free (CI greps for ::warning::).
        let (_, warnings) = render_diff(&tight, &tight, 10.0);
        assert!(warnings.is_empty(), "{warnings:?}");
        // Tail growing: regression warning fires.
        let (text, warnings) = render_diff(&tight, &heavy, 10.0);
        assert!(text.contains("p99 (A→B)"), "{text}");
        assert!(
            warnings.iter().any(|w| w.contains("p99 regressed")),
            "{warnings:?}"
        );
        // Tail shrinking: improvements never warn.
        let (_, warnings) = render_diff(&heavy, &tight, 10.0);
        assert!(!warnings.iter().any(|w| w.contains("p99")), "{warnings:?}");
    }

    #[test]
    fn export_then_load_round_trips() {
        let mut obs = Obs::new(ObsLevel::Full);
        obs.span_start("phase.query_flood", 1, 0, SpanSnapshot::default());
        obs.span_end(
            "phase.query_flood",
            1,
            1_000,
            SpanSnapshot {
                messages: 1,
                bytes: 10,
                energy_nj: 100,
            },
        );
        obs.inc("c");
        obs.gauge_set("g", -4);
        obs.observe("h", &[2, 8], 3);
        let manifest = Manifest {
            tool: "test".into(),
            seed: 7,
            threads: 2,
            git_rev: "unknown".into(),
            config: vec![("nodes".into(), "10".into())],
        };
        let dir = std::env::temp_dir().join(format!("obs-rt-{}", std::process::id()));
        write_dir(&dir, &manifest, &obs).expect("write obs dir");
        let run = load_dir(&dir).expect("load obs dir");
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(run.manifest, manifest);
        assert_eq!(run.spans.len(), 1);
        assert_eq!(run.spans[0].name, "phase.query_flood");
        assert_eq!(run.metrics.len(), 3);
    }
}
