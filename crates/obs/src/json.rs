//! A minimal JSON value model: enough to write and re-read the
//! `BENCH_*.json` and obs-directory artefacts without external
//! dependencies (the build is fully offline, see DESIGN.md §5).
//!
//! Numbers are `f64` (every quantity in a report is a count or a
//! duration), object keys keep insertion order so emitted files are
//! stable, and the parser accepts exactly the subset the writers emit.
//!
//! Historically this lived in `icpda-bench`; it moved here so the obs
//! exporter (which `wsn-sim` sits on top of) can use it without a
//! dependency cycle. `icpda_bench::json` re-exports it unchanged.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects (`None` on anything else).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with 2-space indentation (stable across runs: object
    /// order is insertion order).
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serializes on a single line with no whitespace — the JSONL form
    /// used by `spans.jsonl`/`metrics.jsonl` (no trailing newline; the
    /// line writer adds it).
    #[must_use]
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{}\":", escape(k));
                    v.write_compact(out);
                }
                out.push('}');
            }
            scalar => scalar.write(out, 0),
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let close = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(x) => {
                // Integers print without a trailing `.0` so counts stay
                // readable; everything else keeps full precision.
                if x.fract() == 0.0 && x.abs() < 9e15 {
                    let _ = write!(out, "{}", *x as i64);
                } else {
                    let _ = write!(out, "{x}");
                }
            }
            Json::Str(s) => {
                let _ = write!(out, "\"{}\"", escape(s));
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&close);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    let _ = write!(out, "{pad}\"{}\": ", escape(k));
                    v.write(out, indent + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&close);
                out.push('}');
            }
        }
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_into(&mut out, s);
    out
}

/// Appends `s` to `out` with JSON string escaping, without allocating a
/// fresh `String` per call — the form the streaming line writers use.
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a byte-offset description on malformed input.
pub fn parse(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while bytes
        .get(*pos)
        .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
    {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", b as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("expected `{word}` at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while bytes
        .get(*pos)
        .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        *pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("unknown escape `\\{}`", *other as char)),
                }
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through unchanged).
                let rest = &bytes[*pos..];
                let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                let c = s.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_report_shape() {
        let doc = Json::Obj(vec![
            ("label".into(), Json::Str("ci".into())),
            ("threads".into(), Json::Num(8.0)),
            (
                "results".into(),
                Json::Arr(vec![Json::Obj(vec![
                    ("name".into(), Json::Str("engine_events_n200".into())),
                    ("median_secs".into(), Json::Num(0.125)),
                    ("ok".into(), Json::Bool(true)),
                    ("unit".into(), Json::Null),
                ])]),
            ),
        ]);
        let text = doc.pretty();
        let back = parse(&text).expect("round trip");
        assert_eq!(back, doc);
        assert_eq!(
            back.get("results")
                .and_then(|r| r.as_arr())
                .and_then(|a| a.first())
                .and_then(|o| o.get("median_secs"))
                .and_then(Json::as_f64),
            Some(0.125)
        );
    }

    #[test]
    fn compact_is_single_line_and_round_trips() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::Str("phase.aggregation".into())),
            ("node".into(), Json::Num(7.0)),
            ("vals".into(), Json::Arr(vec![Json::Num(1.0), Json::Null])),
        ]);
        let line = doc.compact();
        assert_eq!(
            line,
            "{\"name\":\"phase.aggregation\",\"node\":7,\"vals\":[1,null]}"
        );
        assert!(!line.contains('\n'));
        assert_eq!(parse(&line).expect("round trip"), doc);
    }

    #[test]
    fn parses_escapes_and_numbers() {
        let v = parse("{\"a\\n\": [1, -2.5, 1e3, \"\\u0041\"]}").expect("parse");
        let arr = v.get("a\n").and_then(Json::as_arr).expect("array");
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(-2.5));
        assert_eq!(arr[2].as_f64(), Some(1000.0));
        assert_eq!(arr[3].as_str(), Some("A"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
    }
}
