//! Reader/renderer for `profile.jsonl`, the engine self-profiling
//! artefact (`icpda obs profile`).
//!
//! `profile.jsonl` is written by the simulator's self-profiler (see
//! `wsn_sim::profile`) when a streaming capture runs with profiling
//! enabled. Unlike `spans.jsonl`/`metrics.jsonl` it records **host
//! facts** — wall-clock nanoseconds per engine phase and the process RSS
//! high-water mark — so it is never part of a byte-identity comparison;
//! it rides the same sanctioned host-facts channel as `BENCH_*.json`
//! (DESIGN §10, rule XL008).
//!
//! Line shapes (one compact JSON object per line):
//!
//! * `{"kind":"meta","schema_version":1,"shards":K,"events":N,"rss_hwm_bytes":B}`
//! * `{"kind":"section","name":"engine.dispatch.delivery","shard":0,"events":N,"wall_ns":W}`
//!   (external sections such as `setup.neighbor_build` omit `shard`)
//! * `{"kind":"gauge","name":"arena.peak_outstanding","value":V}`

use crate::export::check_schema_version;
use crate::json::{self, Json};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One `section` row of `profile.jsonl`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SectionRow {
    /// Section name, e.g. `engine.next_event`.
    pub name: String,
    /// Owning shard, or `None` for whole-run sections.
    pub shard: Option<u32>,
    /// Events attributed to the section.
    pub events: u64,
    /// Wall-clock time attributed to the section, nanoseconds.
    pub wall_ns: u64,
}

/// A fully parsed `profile.jsonl`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProfileRun {
    /// Shard count of the profiled run.
    pub shards: u64,
    /// Events the engine processed.
    pub events: u64,
    /// Process peak RSS (VmHWM) when the profile was written, bytes.
    pub rss_hwm_bytes: Option<u64>,
    /// All section rows, in file order.
    pub sections: Vec<SectionRow>,
    /// All gauges, in file order.
    pub gauges: Vec<(String, i64)>,
}

/// Parses a `profile.jsonl` document.
///
/// # Errors
///
/// Describes the offending line on malformed input or a schema-version
/// mismatch; never panics on foreign files.
pub fn parse_profile(text: &str) -> Result<ProfileRun, String> {
    let mut run = ProfileRun::default();
    let mut saw_meta = false;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = json::parse(line).map_err(|e| format!("profile.jsonl line {}: {e}", i + 1))?;
        let fail = |what: &str| format!("profile.jsonl line {}: {what}", i + 1);
        let num = |key: &str| {
            doc.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| fail(&format!("missing numeric field `{key}`")))
        };
        let name = || {
            doc.get("name")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| fail("missing string field `name`"))
        };
        match doc.get("kind").and_then(Json::as_str) {
            Some("meta") => {
                check_schema_version(&doc, "profile.jsonl")?;
                saw_meta = true;
                run.shards = num("shards")? as u64;
                run.events = num("events")? as u64;
                run.rss_hwm_bytes = doc
                    .get("rss_hwm_bytes")
                    .and_then(Json::as_f64)
                    .map(|v| v as u64);
            }
            Some("section") => run.sections.push(SectionRow {
                name: name()?,
                shard: doc.get("shard").and_then(Json::as_f64).map(|v| v as u32),
                events: num("events")? as u64,
                wall_ns: num("wall_ns")? as u64,
            }),
            Some("gauge") => run.gauges.push((name()?, num("value")? as i64)),
            Some(other) => return Err(fail(&format!("unknown kind `{other}`"))),
            None => return Err(fail("missing string field `kind`")),
        }
    }
    if !saw_meta {
        return Err("profile.jsonl: missing meta line (empty or foreign file)".to_string());
    }
    Ok(run)
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Renders the profile report: top-`top` hot sections by wall time, the
/// per-shard imbalance table, gauges, and the RSS high-water mark.
#[must_use]
pub fn render_profile(run: &ProfileRun, top: usize) -> String {
    let mut out = String::new();
    let rss = match run.rss_hwm_bytes {
        Some(b) => format!("{:.1} MB", b as f64 / 1e6),
        None => "unknown".to_string(),
    };
    let _ = writeln!(
        out,
        "engine profile — {} shard(s), {} events, RSS high-water {rss}",
        run.shards, run.events
    );
    let _ = writeln!(out);

    // Top-k hot sections, aggregated over shards.
    let mut by_name: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for s in &run.sections {
        let e = by_name.entry(&s.name).or_default();
        e.0 += s.events;
        e.1 += s.wall_ns;
    }
    let total_ns: u64 = by_name.values().map(|(_, ns)| ns).sum();
    let mut hot: Vec<(&str, u64, u64)> = by_name
        .into_iter()
        .map(|(name, (events, ns))| (name, events, ns))
        .collect();
    hot.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(b.0)));
    let _ = writeln!(
        out,
        "{:<30} {:>10} {:>7} {:>12} {:>10}",
        "hot section", "wall ms", "share", "events", "ns/event"
    );
    for (name, events, ns) in hot.iter().take(top.max(1)) {
        let share = if total_ns > 0 {
            *ns as f64 / total_ns as f64 * 100.0
        } else {
            0.0
        };
        let per_event = if *events > 0 {
            *ns as f64 / *events as f64
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "{:<30} {:>10.2} {:>6.1}% {:>12} {:>10.1}",
            name,
            ms(*ns),
            share,
            events,
            per_event
        );
    }

    // Per-shard imbalance over the sharded sections.
    let mut by_shard: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
    for s in &run.sections {
        if let Some(shard) = s.shard {
            let e = by_shard.entry(shard).or_default();
            e.0 += s.events;
            e.1 += s.wall_ns;
        }
    }
    if by_shard.len() > 1 {
        let mean_ns =
            by_shard.values().map(|(_, ns)| *ns).sum::<u64>() as f64 / by_shard.len() as f64;
        let max_ns = by_shard.values().map(|(_, ns)| *ns).max().unwrap_or(0);
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{:<8} {:>12} {:>10} {:>9}",
            "shard", "events", "wall ms", "vs mean"
        );
        for (shard, (events, ns)) in &by_shard {
            let vs = if mean_ns > 0.0 {
                *ns as f64 / mean_ns
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{:<8} {:>12} {:>10.2} {:>8.2}x",
                shard,
                events,
                ms(*ns),
                vs
            );
        }
        let imbalance = if mean_ns > 0.0 {
            max_ns as f64 / mean_ns
        } else {
            0.0
        };
        let _ = writeln!(out, "shard imbalance (max/mean wall): {imbalance:.2}x");
    }

    if !run.gauges.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(out, "{:<40} {:>12}", "gauge", "value");
        for (name, value) in &run.gauges {
            let _ = writeln!(out, "{name:<40} {value:>12}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = concat!(
        "{\"kind\":\"meta\",\"schema_version\":1,\"shards\":2,\"events\":1000,\"rss_hwm_bytes\":52428800}\n",
        "{\"kind\":\"section\",\"name\":\"engine.next_event\",\"shard\":0,\"events\":500,\"wall_ns\":2000000}\n",
        "{\"kind\":\"section\",\"name\":\"engine.next_event\",\"shard\":1,\"events\":500,\"wall_ns\":6000000}\n",
        "{\"kind\":\"section\",\"name\":\"engine.dispatch.delivery\",\"shard\":0,\"events\":300,\"wall_ns\":9000000}\n",
        "{\"kind\":\"section\",\"name\":\"setup.neighbor_build\",\"events\":1,\"wall_ns\":1500000}\n",
        "{\"kind\":\"gauge\",\"name\":\"arena.peak_outstanding\",\"value\":12}\n",
    );

    #[test]
    fn parses_every_row_kind() {
        let run = parse_profile(SAMPLE).expect("parse");
        assert_eq!(run.shards, 2);
        assert_eq!(run.events, 1000);
        assert_eq!(run.rss_hwm_bytes, Some(50 << 20));
        assert_eq!(run.sections.len(), 4);
        assert_eq!(run.sections[3].shard, None, "external section has no shard");
        assert_eq!(run.gauges, vec![("arena.peak_outstanding".to_string(), 12)]);
    }

    #[test]
    fn rejects_foreign_or_versionless_files() {
        assert!(parse_profile("").is_err());
        assert!(parse_profile("{\"kind\":\"meta\",\"shards\":1,\"events\":0}").is_err());
        assert!(parse_profile("{\"kind\":\"mystery\"}").is_err());
    }

    #[test]
    fn report_ranks_sections_and_shows_imbalance() {
        let run = parse_profile(SAMPLE).expect("parse");
        let text = render_profile(&run, 3);
        assert!(text.contains("RSS high-water 52.4 MB"), "{text}");
        // dispatch.delivery (9ms) outranks next_event (8ms combined).
        let dispatch = text.find("engine.dispatch.delivery").expect("dispatch row");
        let next = text.find("engine.next_event").expect("next_event row");
        assert!(
            dispatch < next,
            "hot sections not ranked by wall time:\n{text}"
        );
        assert!(text.contains("shard imbalance"), "{text}");
        // Shard 1 carries 6ms of 5.5ms mean pop time -> > 1x.
        assert!(text.contains("arena.peak_outstanding"), "{text}");
    }

    #[test]
    fn top_k_truncates() {
        let run = parse_profile(SAMPLE).expect("parse");
        let text = render_profile(&run, 1);
        assert!(text.contains("engine.dispatch.delivery"), "{text}");
        assert!(!text.contains("setup.neighbor_build"), "{text}");
    }
}
