//! The obs-directory exporter: `manifest.json` + `spans.jsonl` +
//! `metrics.jsonl`.
//!
//! `spans.jsonl` and `metrics.jsonl` are pure functions of the [`Obs`]
//! registry, which is filled by the single-threaded simulator — so for a
//! given seed they are byte-identical at any harness thread count (CI
//! `cmp`s a 1-thread against an 8-thread run). `manifest.json` is the
//! one file that records environment facts (thread count, git revision)
//! and is excluded from that comparison.

use crate::json::Json;
use crate::Obs;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Version stamp written into every `manifest.json`. Readers reject
/// other versions with a clear error instead of a parse panic.
pub const OBS_SCHEMA_VERSION: u64 = 1;

/// The run manifest: what produced an obs directory.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Manifest {
    /// Producing tool, e.g. `icpda run` or `bench`.
    pub tool: String,
    /// RNG seed of the run.
    pub seed: u64,
    /// Harness thread count (the sim itself is single-threaded).
    pub threads: usize,
    /// `git rev-parse --short HEAD` of the producing build, or
    /// `unknown`.
    pub git_rev: String,
    /// Flattened run configuration as ordered key/value pairs.
    pub config: Vec<(String, String)>,
}

impl Manifest {
    /// Renders the manifest (schema version first).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let config = self
            .config
            .iter()
            .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
            .collect();
        Json::Obj(vec![
            (
                "schema_version".into(),
                Json::Num(OBS_SCHEMA_VERSION as f64),
            ),
            ("tool".into(), Json::Str(self.tool.clone())),
            ("seed".into(), Json::Num(self.seed as f64)),
            ("threads".into(), Json::Num(self.threads as f64)),
            ("git_rev".into(), Json::Str(self.git_rev.clone())),
            ("config".into(), Json::Obj(config)),
        ])
    }

    /// Reads a manifest back, checking the schema version.
    ///
    /// # Errors
    ///
    /// Describes a missing/unsupported `schema_version` or a malformed
    /// field; never panics on foreign input.
    pub fn from_json(doc: &Json) -> Result<Manifest, String> {
        check_schema_version(doc, "obs manifest")?;
        let str_field = |key: &str| {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("obs manifest: missing string field `{key}`"))
        };
        let num_field = |key: &str| {
            doc.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("obs manifest: missing numeric field `{key}`"))
        };
        let config = match doc.get("config") {
            Some(Json::Obj(pairs)) => pairs
                .iter()
                .map(|(k, v)| {
                    v.as_str()
                        .map(|s| (k.clone(), s.to_string()))
                        .ok_or_else(|| format!("obs manifest: config `{k}` is not a string"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("obs manifest: missing `config` object".to_string()),
        };
        Ok(Manifest {
            tool: str_field("tool")?,
            seed: num_field("seed")? as u64,
            threads: num_field("threads")? as usize,
            git_rev: str_field("git_rev")?,
            config,
        })
    }
}

/// Checks the `schema_version` stamp of a versioned JSON artefact
/// (`what` names it in errors, e.g. `obs manifest` or a bench report
/// path).
///
/// # Errors
///
/// A clear description when the stamp is missing (pre-versioned or
/// foreign file) or not [`OBS_SCHEMA_VERSION`].
pub fn check_schema_version(doc: &Json, what: &str) -> Result<(), String> {
    match doc.get("schema_version").and_then(Json::as_f64) {
        None => Err(format!(
            "{what}: missing `schema_version` (pre-versioned or foreign file; \
             this build reads version {OBS_SCHEMA_VERSION}) — regenerate it"
        )),
        Some(v) if v == OBS_SCHEMA_VERSION as f64 => Ok(()),
        Some(v) => Err(format!(
            "{what}: unsupported schema_version {v} (this build reads {OBS_SCHEMA_VERSION})"
        )),
    }
}

/// Appends one `spans.jsonl` line (newline included) for `s` to `out`.
///
/// This is the *single* span renderer: [`spans_jsonl`] (the buffered
/// exporter) and [`crate::stream::ObsStream`] (the streaming exporter)
/// both call it, so their output is byte-identical by construction —
/// the property the CI `cmp` gates pin.
pub fn write_span_line(out: &mut String, s: &crate::Span) {
    out.push_str("{\"name\":\"");
    crate::json::escape_into(out, s.name);
    let _ = write!(
        out,
        "\",\"node\":{},\"start_ns\":{},\"end_ns\":{},\"messages\":{},\"bytes\":{},\"energy_nj\":{}}}",
        s.node, s.start_ns, s.end_ns, s.messages, s.bytes, s.energy_nj
    );
    out.push('\n');
}

/// Renders `spans.jsonl`: one compact object per completed span, in
/// completion order.
#[must_use]
pub fn spans_jsonl(obs: &Obs) -> String {
    let mut out = String::new();
    for s in obs.spans() {
        write_span_line(&mut out, s);
    }
    out
}

/// Renders `metrics.jsonl`: counters, then gauges, then histograms, each
/// in name order.
#[must_use]
pub fn metrics_jsonl(obs: &Obs) -> String {
    let mut out = String::new();
    for (name, value) in obs.counters() {
        let line = Json::Obj(vec![
            ("kind".into(), Json::Str("counter".into())),
            ("name".into(), Json::Str(name.to_string())),
            ("value".into(), Json::Num(value as f64)),
        ]);
        let _ = writeln!(out, "{}", line.compact());
    }
    for (name, value) in obs.gauges() {
        let line = Json::Obj(vec![
            ("kind".into(), Json::Str("gauge".into())),
            ("name".into(), Json::Str(name.to_string())),
            ("value".into(), Json::Num(value as f64)),
        ]);
        let _ = writeln!(out, "{}", line.compact());
    }
    for (name, hist) in obs.histograms() {
        let bounds = hist.bounds().iter().map(|b| Json::Num(*b as f64)).collect();
        let counts = hist.counts().iter().map(|c| Json::Num(*c as f64)).collect();
        let line = Json::Obj(vec![
            ("kind".into(), Json::Str("histogram".into())),
            ("name".into(), Json::Str(name.to_string())),
            ("bounds".into(), Json::Arr(bounds)),
            ("counts".into(), Json::Arr(counts)),
            ("total".into(), Json::Num(hist.total() as f64)),
            ("sum".into(), Json::Num(hist.sum() as f64)),
        ]);
        let _ = writeln!(out, "{}", line.compact());
    }
    out
}

/// Writes the three obs files into `dir`, creating it if needed.
///
/// # Errors
///
/// Any I/O failure creating the directory or writing a file.
pub fn write_dir(dir: &Path, manifest: &Manifest, obs: &Obs) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("manifest.json"), manifest.to_json().pretty())?;
    std::fs::write(dir.join("spans.jsonl"), spans_jsonl(obs))?;
    std::fs::write(dir.join("metrics.jsonl"), metrics_jsonl(obs))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ObsLevel, SpanSnapshot};

    fn sample_obs() -> Obs {
        let mut obs = Obs::new(ObsLevel::Full);
        obs.span_start("phase.query_flood", 1, 0, SpanSnapshot::default());
        obs.span_end(
            "phase.query_flood",
            1,
            2_000_000,
            SpanSnapshot {
                messages: 3,
                bytes: 120,
                energy_nj: 80_000,
            },
        );
        obs.add("engine.mac_drops", 2);
        obs.gauge_set("sim.min_alive", 199);
        obs.observe("engine.batch_receivers", &[1, 4, 16], 9);
        obs
    }

    #[test]
    fn manifest_round_trips() {
        let m = Manifest {
            tool: "icpda run".into(),
            seed: 42,
            threads: 8,
            git_rev: "abc1234".into(),
            config: vec![("nodes".into(), "200".into())],
        };
        let back = Manifest::from_json(&m.to_json()).expect("round trip");
        assert_eq!(back, m);
    }

    #[test]
    fn manifest_rejects_missing_or_wrong_schema_version() {
        let err = Manifest::from_json(&Json::Obj(vec![])).expect_err("missing version");
        assert!(err.contains("missing `schema_version`"), "{err}");
        let doc = Json::Obj(vec![("schema_version".into(), Json::Num(99.0))]);
        let err = Manifest::from_json(&doc).expect_err("wrong version");
        assert!(err.contains("unsupported schema_version 99"), "{err}");
    }

    #[test]
    fn jsonl_renders_one_parseable_line_per_record() {
        let obs = sample_obs();
        let spans = spans_jsonl(&obs);
        assert_eq!(spans.lines().count(), 1);
        let first = spans.lines().next().expect("span line");
        let doc = crate::json::parse(first).expect("valid json");
        assert_eq!(
            doc.get("name").and_then(Json::as_str),
            Some("phase.query_flood")
        );
        assert_eq!(doc.get("end_ns").and_then(Json::as_f64), Some(2e6));

        let metrics = metrics_jsonl(&obs);
        assert_eq!(metrics.lines().count(), 3);
        for line in metrics.lines() {
            crate::json::parse(line).expect("valid json line");
        }
        // Counters come first, then gauges, then histograms.
        let kinds: Vec<String> = metrics
            .lines()
            .filter_map(|l| {
                crate::json::parse(l)
                    .ok()?
                    .get("kind")
                    .and_then(Json::as_str)
                    .map(str::to_string)
            })
            .collect();
        assert_eq!(kinds, ["counter", "gauge", "histogram"]);
    }

    #[test]
    fn rendering_is_deterministic() {
        let a = sample_obs();
        let b = sample_obs();
        assert_eq!(spans_jsonl(&a), spans_jsonl(&b));
        assert_eq!(metrics_jsonl(&a), metrics_jsonl(&b));
    }
}
