//! Cross-crate integration: simulator + crypto + aggregation + protocol
//! + analysis working together, checked against each other.

use icpda_suite::agg::{self, tag, AggFunction};
use icpda_suite::icpda::{evaluate_disclosure, IcpdaConfig, IcpdaRun};
use icpda_suite::icpda_analysis as analysis;
use icpda_suite::wsn_crypto::LinkAdversary;
use icpda_suite::wsn_sim::geometry::Region;
use icpda_suite::wsn_sim::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn deployment(n: usize, seed: u64) -> Deployment {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    Deployment::uniform_random_with_central_bs(n, Region::paper_default(), 50.0, &mut rng)
}

#[test]
fn tag_and_icpda_agree_on_the_aggregate() {
    // Same deployment, same readings: both protocols must land near the
    // same SUM (each loses a few nodes, never invents any).
    let n = 400;
    let mut rng = ChaCha8Rng::seed_from_u64(50);
    let readings = agg::readings::uniform_readings(n, 10, 50, &mut rng);
    let truth: u64 = readings[1..].iter().sum();

    let t = tag::run_tag(
        deployment(n, 1),
        SimConfig::paper_default(),
        tag::TagConfig::paper_default(AggFunction::Sum),
        &readings,
        2,
    );
    let i = IcpdaRun::new(
        deployment(n, 1),
        IcpdaConfig::paper_default(AggFunction::Sum),
        readings,
        2,
    )
    .run();

    assert!(t.value <= truth as f64 + 0.5, "TAG never over-counts");
    assert!(i.value <= truth as f64 + 0.5, "iCPDA never over-counts");
    assert!(t.value >= 0.9 * truth as f64);
    assert!(i.value >= 0.85 * truth as f64);
    let diff = (t.value - i.value).abs() / truth as f64;
    assert!(diff < 0.15, "protocols diverge by {diff}");
}

#[test]
fn participation_respects_the_analysis_bound() {
    // The closed-form orphan bound is an upper bound on structural
    // non-participation (it ignores the merge step, which only helps);
    // the measured participation additionally loses clusters to channel
    // effects, so compare with slack on the loss side only.
    let n = 500;
    let out = IcpdaRun::new(
        deployment(n, 3),
        IcpdaConfig::paper_default(AggFunction::Count),
        agg::readings::count_readings(n),
        4,
    )
    .run();
    let degree = analysis::expected_degree(n, Region::paper_default(), 50.0);
    let bound = analysis::participation_bound(0.25, degree);
    let measured = out.included as f64 / (n - 1) as f64;
    assert!(
        measured > bound - 0.12,
        "measured {measured} too far below bound {bound}"
    );
}

#[test]
fn measured_disclosure_tracks_theory_mixture() {
    let out = IcpdaRun::new(
        deployment(600, 5),
        IcpdaConfig::paper_default(AggFunction::Count),
        agg::readings::count_readings(600),
        6,
    )
    .run();
    let p_x = 0.3;
    let theory = analysis::mixed_disclosure(p_x, &out.cluster_sizes);
    let mut measured = Vec::new();
    for seed in 0..40u64 {
        let adv = LinkAdversary::new(p_x, seed);
        measured.push(evaluate_disclosure(&out.rosters, &adv).probability());
    }
    let mc = measured.iter().sum::<f64>() / measured.len() as f64;
    // Theory uses idealized roster sizes; Monte Carlo uses real rosters.
    assert!(
        (mc - theory).abs() < theory.max(0.002) * 1.0 + 0.002,
        "Monte-Carlo {mc} vs mixture {theory}"
    );
}

#[test]
fn variance_query_end_to_end() {
    let n = 300;
    let mut rng = ChaCha8Rng::seed_from_u64(51);
    let readings = agg::readings::uniform_readings(n, 100, 200, &mut rng);
    let out = IcpdaRun::new(
        deployment(n, 9),
        IcpdaConfig::paper_default(AggFunction::Variance),
        readings.clone(),
        12,
    )
    .run();
    assert!(out.accepted);
    let truth = AggFunction::Variance.ground_truth(&readings[1..]);
    // Variance of uniform [100, 200] is ~833; the subset estimate should
    // be in the right ballpark.
    assert!(out.value > 0.0);
    assert!(
        (out.value - truth).abs() / truth < 0.25,
        "variance {} vs truth {truth}",
        out.value
    );
}

#[test]
fn whole_stack_is_deterministic() {
    let run = || {
        let out = IcpdaRun::new(
            deployment(250, 7),
            IcpdaConfig::paper_default(AggFunction::Sum),
            agg::readings::count_readings(250),
            8,
        )
        .run();
        (
            out.value.to_bits(),
            out.total_bytes,
            out.heads,
            out.cluster_sizes.clone(),
            out.rosters.len(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn overhead_ratio_matches_the_models_order_of_magnitude() {
    let n = 400;
    let readings = agg::readings::count_readings(n);
    let t = tag::run_tag(
        deployment(n, 2),
        SimConfig::paper_default(),
        tag::TagConfig::paper_default(AggFunction::Count),
        &readings,
        3,
    );
    let i = IcpdaRun::new(
        deployment(n, 2),
        IcpdaConfig::paper_default(AggFunction::Count),
        readings,
        3,
    )
    .run();
    let frame_ratio = i.total_frames as f64 / t.total_frames as f64;
    let model = analysis::predicted_ratio(i.mean_cluster_size().max(2.0));
    assert!(
        frame_ratio > model * 0.7 && frame_ratio < model * 2.0,
        "measured frame ratio {frame_ratio} vs model {model}"
    );
}

#[test]
fn tag_byte_model_matches_measurement() {
    let n = 400;
    let readings = agg::readings::count_readings(n);
    let t = tag::run_tag(
        deployment(n, 6),
        SimConfig::paper_default(),
        tag::TagConfig::paper_default(AggFunction::Count),
        &readings,
        7,
    );
    let model = analysis::overhead::tag_bytes(n, 1, 16);
    let measured = t.total_bytes as f64;
    // The model assumes every node joins and reports; loss trims a few
    // percent off the measured number.
    assert!(
        measured <= model * 1.01 && measured >= model * 0.9,
        "measured {measured} vs model {model}"
    );
}

#[test]
fn measured_latency_matches_the_schedule_model() {
    let n = 400;
    let readings = agg::readings::count_readings(n);
    let config = IcpdaConfig::paper_default(AggFunction::Count);
    let out = IcpdaRun::new(deployment(n, 2), config, readings.clone(), 3).run();
    let model = analysis::icpda_result_time(&config.schedule).as_secs_f64();
    let measured = out.last_update.expect("reports arrived").as_secs_f64();
    assert!(
        (measured - model).abs() < 1.5,
        "measured {measured} vs model {model}"
    );
    let t = tag::run_tag(
        deployment(n, 2),
        SimConfig::paper_default(),
        tag::TagConfig::paper_default(AggFunction::Count),
        &readings,
        3,
    );
    let tag_model = analysis::tag_result_time(
        wsn_sim::SimDuration::from_secs(2),
        wsn_sim::SimDuration::from_secs(10),
        20,
    )
    .as_secs_f64();
    let tag_measured = t.last_report_at.expect("reports arrived").as_secs_f64();
    assert!(
        (tag_measured - tag_model).abs() < 1.0,
        "TAG measured {tag_measured} vs model {tag_model}"
    );
}

#[test]
fn stochastic_loss_degrades_but_does_not_break_the_protocol() {
    let n = 300;
    let mut config = SimConfig::paper_default();
    config.loss = LossModel::Iid(0.03);
    let out = IcpdaRun::new(
        deployment(n, 4),
        IcpdaConfig::paper_default(AggFunction::Count),
        agg::readings::count_readings(n),
        5,
    )
    .with_sim_config(config)
    .run();
    assert!(out.accepted, "benign loss must not trigger alarms");
    assert!(
        out.accuracy() > 0.6,
        "repair keeps most clusters alive: {}",
        out.accuracy()
    );
    assert!(out.accuracy() <= 1.0);
}
