//! End-to-end application scenarios across the whole stack — the
//! regression tests behind the runnable examples.

use icpda_suite::agg::{self, function::pack_grouped, AggFunction};
use icpda_suite::icpda::{run_session_with_slander, IcpdaConfig, IcpdaRun, Pollution};
use icpda_suite::wsn_sim::geometry::Region;
use icpda_suite::wsn_sim::topology::Deployment;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn network(n: usize, seed: u64) -> Deployment {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    Deployment::uniform_random_with_central_bs(n, Region::paper_default(), 50.0, &mut rng)
}

/// The smart-metering example's core claim: a 24-round session over
/// persistent clusters tracks the diurnal load curve accurately.
#[test]
fn metering_day_profile_regression() {
    let meters = 200;
    let mut config = IcpdaConfig::paper_default(AggFunction::Average);
    config.rounds = 6; // a compressed "day" keeps the test fast
    let mut workload = ChaCha8Rng::seed_from_u64(99);
    let first = agg::readings::metering_readings(meters, 0, &mut workload);
    let schedule: Vec<Vec<u64>> = [4u32, 8, 12, 16, 20]
        .iter()
        .map(|&h| agg::readings::metering_readings(meters, h, &mut workload))
        .collect();
    let out = IcpdaRun::new(network(meters, 11), config, first, 1)
        .with_reading_schedule(schedule)
        .run();
    assert_eq!(out.decisions.len(), 6);
    for (i, (d, truth)) in out.decisions.iter().zip(&out.round_truths).enumerate() {
        assert!(d.accepted, "hour-slot {i} rejected");
        let acc = d.value / truth.max(1.0);
        assert!(
            (acc - 1.0).abs() < 0.05,
            "hour-slot {i}: avg {} vs {truth}",
            d.value
        );
    }
    // The evening slot (20h) must exceed the small-hours slot (4h).
    assert!(out.decisions[5].value > out.decisions[1].value * 1.5);
}

/// The grouped-query example's core claim: per-zone sums arrive intact.
#[test]
fn zonal_occupancy_regression() {
    let n = 250;
    let function = AggFunction::grouped_sum(4);
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let readings: Vec<u64> = (0..n)
        .map(|i| {
            if i == 0 {
                0
            } else {
                pack_grouped((i % 4) as u32, rand::Rng::gen_range(&mut rng, 1..6))
            }
        })
        .collect();
    let truth = function.group_ground_truth(&readings[1..]);
    let out = IcpdaRun::new(
        network(n, 8),
        IcpdaConfig::paper_default(function),
        readings,
        4,
    )
    .run();
    assert!(out.accepted);
    let collected = function.group_values(&out.decision.totals);
    for (z, (got, want)) in collected.iter().zip(&truth).enumerate() {
        assert!(got <= want, "zone {z} over-counts");
        assert!(got / want > 0.8, "zone {z}: {got}/{want}");
    }
}

/// The quarantine example's core claim, with a slanderer thrown in:
/// both a real polluter AND a false accuser are identified and the
/// session converges to an accepted, near-truth result.
#[test]
fn polluter_and_slanderer_both_quarantined() {
    let n = 250;
    let config = IcpdaConfig::paper_default(AggFunction::Count);
    let dep = network(n, 9);
    let readings = agg::readings::count_readings(n);
    let probe = IcpdaRun::new(dep.clone(), config, readings.clone(), 17).run();
    let mut heads = probe
        .rosters
        .iter()
        .filter_map(|(node, r)| (r.head() == *node).then_some(*node));
    let polluter = heads.next().expect("a head");
    let victim = heads.next().expect("another head");
    let slanderer = probe
        .rosters
        .iter()
        .find_map(|(node, r)| {
            (r.head() != *node && *node != polluter && *node != victim).then_some(*node)
        })
        .expect("a member");
    let session = run_session_with_slander(
        &dep,
        config,
        &readings,
        17,
        &[(polluter, Pollution::inflate(7_000))],
        &[(slanderer, victim)],
        8,
    );
    let accepted = session.accepted().expect("session converges");
    assert!(
        session.excluded.contains(&polluter),
        "{:?}",
        session.excluded
    );
    assert!(
        session.excluded.contains(&slanderer),
        "{:?}",
        session.excluded
    );
    assert!(
        !session.excluded.contains(&victim),
        "the slandered head is exonerated: {:?}",
        session.excluded
    );
    assert!(accepted.accuracy() > 0.75, "{}", accepted.accuracy());
}
